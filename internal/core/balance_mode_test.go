package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

// TestElementLevelEquivalence: both balancing granularities must produce
// identical results across all three modes.
func TestElementLevelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(180)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(6)
		dt, bf, _ := buildBoth(rng, n, d, p)
		boxes := randomBoxes(rng, 1+rng.Intn(30), n, d)

		dt.SetBalanceMode(ElementLevel)
		counts := dt.CountBatch(boxes)
		reports := dt.ReportBatch(boxes)
		dt.SetBalanceMode(GroupLevel)
		for i, b := range boxes {
			if counts[i] != int64(bf.Count(b)) {
				return false
			}
			if !reflect.DeepEqual(brute.IDs(reports[i]), brute.IDs(bf.Report(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestElementLevelAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	dt, bf, _ := buildBoth(rng, 150, 2, 4)
	weight := func(pt geom.Point) float64 { return float64(pt.ID%5) + 0.5 }
	h := PrepareAssociative(dt, semigroup.FloatSum(), weight)
	boxes := randomBoxes(rng, 20, 150, 2)
	dt.SetBalanceMode(ElementLevel)
	defer dt.SetBalanceMode(GroupLevel)
	got := h.Batch(boxes)
	for i, b := range boxes {
		want := brute.Aggregate(bf, semigroup.FloatSum(), weight, b)
		if got[i] != want {
			t.Fatalf("query %d: %v vs %v", i, got[i], want)
		}
	}
}

// TestElementLevelShipsLessUnderSparseDemand: with a single hot element,
// element-granularity copying must ship no more points than group
// granularity (which replicates whole parts).
func TestElementLevelShipsLess(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n, p := 512, 8
	dt, _, pts := buildBoth(rng, n, 2, p)
	target := pts[7]
	boxes := make([]geom.Box, n)
	for i := range boxes {
		boxes[i] = geom.Box{
			Lo: []int32{target.X[0] - 1, 1},
			Hi: []int32{target.X[0] + 1, int32(n)},
		}
	}
	dt.SetBalanceMode(GroupLevel)
	dt.CountBatch(boxes)
	groupShipped := dt.LastCopiedPoints()
	dt.SetBalanceMode(ElementLevel)
	dt.CountBatch(boxes)
	elemShipped := dt.LastCopiedPoints()
	dt.SetBalanceMode(GroupLevel)
	if groupShipped > 0 && elemShipped > groupShipped {
		t.Errorf("element-level shipped %d points, group-level %d", elemShipped, groupShipped)
	}
}

// TestElementLevelBalancesHotElement: the served load must still spread.
func TestElementLevelBalancesHotElement(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n, p := 512, 8
	dt, bf, pts := buildBoth(rng, n, 2, p)
	target := pts[3]
	boxes := make([]geom.Box, n)
	for i := range boxes {
		boxes[i] = geom.Box{
			Lo: []int32{target.X[0] - 1, 1},
			Hi: []int32{target.X[0] + 1, int32(n)},
		}
	}
	dt.SetBalanceMode(ElementLevel)
	defer dt.SetBalanceMode(GroupLevel)
	got := dt.CountBatch(boxes)
	want := int64(bf.Count(boxes[0]))
	for i := range got {
		if got[i] != want {
			t.Fatalf("query %d: %d vs %d", i, got[i], want)
		}
	}
	stats := dt.LastSearchStats()
	total, mx := 0, 0
	for _, s := range stats {
		total += s.Served
		if s.Served > mx {
			mx = s.Served
		}
	}
	if total == 0 {
		t.Skip("hat absorbed the workload")
	}
	if mx > 2*total/p+2 {
		t.Errorf("element-level congestion: max %d of %d", mx, total)
	}
}
