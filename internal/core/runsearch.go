package core

import (
	"repro/internal/cgm"
	"repro/internal/geom"
)

// The batched-search supersteps (Algorithm Search) have one structure
// shared by every result mode of §4.2:
//
//	phase A  hat descent of Q over the local replica (hatSearch); matches
//	         resolved inside the hat are answered by the mode, and the
//	         queries that must visit the forest become the subquery set Q″
//	phase B  demand-balanced copying of congested forest parts and routing
//	         of Q″ to the copy hosts (phaseB)
//	phase C  sequential answering of the served subqueries on their hosts
//	phase D  the mode's result collectives — gather partials at each
//	         query's home, or the report mode's balanced redistribution
//
// runSearch owns phases A–C and the machine run; a searchMode supplies the
// per-mode hooks. Each mode is a ~40-line instance, so a new result mode
// no longer copies the superstep plumbing.

// searchMode supplies the per-mode pieces of the unified pipeline for a
// batch producing one R per query.
type searchMode[R any] interface {
	// label prefixes the communication labels of the batch's collectives.
	label() string
	// init seeds the shared result slice before the machine run (e.g.
	// with monoid identities).
	init(results []R)
	// start creates the per-processor mode state of one machine run.
	// Deliveries into results must stay within disjoint per-processor
	// shares (the query home blocks, or rank-indexed slots).
	start(t *Tree, ps *procState, st *SearchStats, results []R) procRun
	// epilogue runs once on the caller's goroutine after the machine run
	// (e.g. the report mode's final grouping).
	epilogue(results []R)
}

// procRun is the per-processor half of a searchMode during one run.
type procRun interface {
	// answerHat resolves one hat selection of phase A.
	answerHat(q Query, s hatSel)
	// materialize is called for every element copy installed in phase B.
	materialize(el *element)
	// answerSub serves one routed subquery in phase C.
	answerSub(s subquery)
	// serveRouted runs the fused route-and-serve superstep of a resident
	// tree: the phase-B partition is exchanged under label and the
	// collect step answers the column where it lands — routing and phase
	// C in one round. It returns the rank's served count (what a
	// coordinator-side route exchange would have received).
	serveRouted(pr *cgm.Proc, label string, routed [][]subquery) int
	// finish runs the mode's result collectives (phase D). Every
	// processor calls it exactly once, so its collectives stay SPMD.
	finish(pr *cgm.Proc)
}

// aggNamer is implemented by modes whose batches serve a registered
// aggregate; phase B's resident install step annotates copies for it.
type aggNamer interface {
	residentAggName() string
}

// phaseASink wires one processor's hat descents into its mode run: hat
// selections are answered immediately, forest crossings accumulate as Q″.
// One sink serves the whole batch, so phase A's innermost loop allocates
// no closures.
type phaseASink struct {
	st   *SearchStats
	run  procRun
	subs []subquery
}

func (s *phaseASink) hatSelection(q Query, h hatSel) {
	s.st.HatSelections++
	s.run.answerHat(q, h)
}

func (s *phaseASink) forestSub(sq subquery) { s.subs = append(s.subs, sq) }

// runSearch executes the unified batched-search pipeline for one batch.
func runSearch[R any](t *Tree, queries []Query, mode searchMode[R]) []R {
	m := len(queries)
	if m == 0 {
		return nil
	}
	p := t.P()
	results := make([]R, m)
	mode.init(results)
	t.prepBatch()
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		st := &t.lastStats[pr.Rank()]
		run := mode.start(t, ps, st, results)

		// Phase A: advance this processor's query block through the hat.
		lo, hi := queryBlock(pr.Rank(), m, p)
		sink := phaseASink{st: st, run: run}
		for qi := lo; qi < hi; qi++ {
			ps.hatSearch(t, queries[qi], &sink)
		}
		subs := sink.subs
		st.Subqueries = len(subs)

		// Phase B: balance Q″ across copies of the demanded forest parts.
		aggName := ""
		if an, ok := mode.(aggNamer); ok && t.resident {
			aggName = an.residentAggName()
		}
		served, routed, routeLbl := t.phaseB(pr, ps, subs, mode.label(), aggName, run.materialize)

		// Phase C: answer the subqueries this processor serves — locally
		// on a fabric tree; on a resident tree the route exchange and the
		// serving collapse into one superstep (the routed column is
		// answered by the collect step where it lands).
		if t.resident {
			st.Served = run.serveRouted(pr, routeLbl, routed)
		} else {
			st.Served = len(served)
			st.CopiesHeld = len(ps.copies)
			for _, s := range served {
				run.answerSub(s)
			}
		}

		// Phase D: the mode's result collectives.
		run.finish(pr)
	})
	mode.epilogue(results)
	return results
}

// asQueries wraps a box batch as the pipeline's query set; the ID is the
// batch index, which result delivery relies on.
func asQueries(boxes []geom.Box) []Query {
	qs := make([]Query, len(boxes))
	for i, b := range boxes {
		qs[i] = Query{ID: int32(i), Box: b}
	}
	return qs
}
