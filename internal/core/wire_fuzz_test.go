package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/segtree"
	"repro/internal/wire"
)

// byteGen derives structured payload values deterministically from fuzz
// input, so the fuzzer explores the value space (dims, counts, key
// shapes, extreme coordinates) rather than only the byte space.
type byteGen struct {
	b []byte
	i int
}

func (g *byteGen) u8() byte {
	if g.i >= len(g.b) {
		return 0
	}
	v := g.b[g.i]
	g.i++
	return v
}

func (g *byteGen) i32() int32 {
	return int32(g.u8()) | int32(g.u8())<<8 | int32(g.u8())<<16 | int32(g.u8())<<24
}

func (g *byteGen) n(max int) int { return int(g.u8()) % (max + 1) }

func (g *byteGen) key(max int) segtree.PathKey {
	n := g.n(max)
	s := make([]byte, n)
	for i := range s {
		s[i] = g.u8()
	}
	return segtree.PathKey(s)
}

func (g *byteGen) point(dims int) geom.Point {
	x := make([]geom.Coord, dims)
	for i := range x {
		x[i] = geom.Coord(g.i32())
	}
	return geom.Point{ID: g.i32(), X: x}
}

func (g *byteGen) points(n, dims int) []geom.Point {
	if n == 0 {
		return nil
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = g.point(dims)
	}
	return pts
}

// fuzzRT requires the raw codec to reproduce v exactly and to agree with
// the gob oracle; any divergence is a layout bug.
func fuzzRT[T any](t *testing.T, v T) {
	b, err := wire.Encode(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, err := wire.Decode[T](b)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	var gbuf bytes.Buffer
	if err := gob.NewEncoder(&gbuf).Encode(&v); err != nil {
		t.Fatalf("gob oracle encode %T: %v", v, err)
	}
	var oracle T
	if err := gob.NewDecoder(&gbuf).Decode(&oracle); err != nil {
		t.Fatalf("gob oracle decode %T: %v", v, err)
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("wire and gob disagree for %T:\nwire %+v\n gob %+v", v, got, oracle)
	}
}

// mustNotPanic feeds arbitrary bytes to a registered decoder: errors are
// expected, panics (or runaway allocations, which the Count guard turns
// into errors) are bugs.
func mustNotPanic[T any](t *testing.T, raw []byte) {
	_, _ = wire.Decode[T](raw)
}

// FuzzWireRoundTrip drives every registered hot-path codec from one fuzz
// input: the first byte splits the budget, the rest derives values (for
// the encode→decode oracle check) and doubles as a hostile block (for the
// corrupt-input check, tagged raw and tagged gob).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte("R\x05points and boxes and keys"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	seed, _ := wire.Encode(nil, []geom.Point{{ID: 1, X: []geom.Coord{2, 3}}})
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		g := &byteGen{b: data}
		dims := 1 + g.n(4)
		n := g.n(12)

		fuzzRT(t, g.points(n, dims))

		eps := make([]epoint, n)
		for i := range eps {
			eps[i] = epoint{Elem: ElemID(g.i32()), Pt: g.point(dims)}
		}
		if n == 0 {
			eps = nil
		}
		fuzzRT(t, eps)

		recs := make([]srec, n)
		for i := range recs {
			recs[i] = srec{Pt: g.point(dims), Key: g.key(9)}
		}
		if n == 0 {
			recs = nil
		}
		fuzzRT(t, recs)

		els := make([]shippedElem, g.n(3))
		for i := range els {
			els[i] = shippedElem{
				Info: ElemInfo{ID: ElemID(g.i32()), Owner: g.i32(), Count: g.i32(),
					Dim: int8(g.u8()), Key: g.key(9), Min: geom.Coord(g.i32()), Max: geom.Coord(g.i32())},
				Pts: g.points(g.n(6), dims),
			}
		}
		if len(els) == 0 {
			els = nil
		}
		fuzzRT(t, els)

		subs := make([]subquery, n)
		for i := range subs {
			lo := make([]geom.Coord, dims)
			hi := make([]geom.Coord, dims)
			for d := range lo {
				lo[d], hi[d] = geom.Coord(g.i32()), geom.Coord(g.i32())
			}
			subs[i] = subquery{Query: g.i32(), Elem: ElemID(g.i32()), Box: geom.Box{Lo: lo, Hi: hi}}
		}
		if n == 0 {
			subs = nil
		}
		fuzzRT(t, subs)
		fuzzRT(t, serveArgs{Subs: subs})
		fuzzRT(t, serveAggArgs{Name: string(g.key(9)), Subs: subs})

		qcs := make([]qcount, n)
		qis := make([]qvalT[int64], n)
		qfs := make([]qvalT[float64], n)
		for i := range qcs {
			qcs[i] = qcount{Query: g.i32(), Val: int64(g.i32())<<32 | int64(uint32(g.i32()))}
			qis[i] = qvalT[int64]{Query: g.i32(), Val: int64(g.i32())}
			qfs[i] = qvalT[float64]{Query: g.i32(), Val: float64(g.i32())}
		}
		if n == 0 {
			qcs, qis, qfs = nil, nil, nil
		}
		fuzzRT(t, qcs)
		fuzzRT(t, qis)
		fuzzRT(t, qfs)

		rls := make([]rlocal, g.n(4))
		for i := range rls {
			rls[i] = rlocal{Query: g.i32(), Pts: g.points(g.n(5), dims), Off: int(g.i32())}
		}
		if len(rls) == 0 {
			rls = nil
		}
		fuzzRT(t, rls)

		rps := make([]ReportPair, n)
		for i := range rps {
			rps[i] = ReportPair{Query: g.i32(), Pt: g.point(dims)}
		}
		if n == 0 {
			rps = nil
		}
		fuzzRT(t, rps)

		// Hostile input: the raw fuzz bytes as a block, both tagged raw
		// ('R' + data) and verbatim. Decoders must return errors, never
		// panic or over-allocate.
		hostile := append([]byte{'R'}, data...)
		for _, blk := range [][]byte{data, hostile} {
			mustNotPanic[[]geom.Point](t, blk)
			mustNotPanic[[][]geom.Point](t, blk)
			mustNotPanic[[]epoint](t, blk)
			mustNotPanic[[]srec](t, blk)
			mustNotPanic[[]shippedElem](t, blk)
			mustNotPanic[[]subquery](t, blk)
			mustNotPanic[serveArgs](t, blk)
			mustNotPanic[serveAggArgs](t, blk)
			mustNotPanic[[]qcount](t, blk)
			mustNotPanic[[]qvalT[int64]](t, blk)
			mustNotPanic[[]qvalT[float64]](t, blk)
			mustNotPanic[[]rlocal](t, blk)
			mustNotPanic[[]ReportPair](t, blk)
			mustNotPanic[[]byte](t, blk)
		}
	})
}
