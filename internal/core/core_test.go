package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(4 * n))
		}
		pts[i] = geom.Point{ID: int32(i), X: x}
	}
	return geom.RankNormalize(pts)
}

func randomBoxes(rng *rand.Rand, q, n, d int) []geom.Box {
	boxes := make([]geom.Box, q)
	for i := range boxes {
		lo := make([]geom.Coord, d)
		hi := make([]geom.Coord, d)
		for j := 0; j < d; j++ {
			a := geom.Coord(rng.Intn(n + 2))
			b := geom.Coord(rng.Intn(n + 2))
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

func buildBoth(rng *rand.Rand, n, d, p int) (*Tree, *brute.Set, []geom.Point) {
	pts := randomPoints(rng, n, d)
	mach := cgm.New(cgm.Config{P: p})
	dt := Build(mach, pts)
	return dt, brute.New(pts), pts
}

func TestCountBatchMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(8)
		dt, bf, _ := buildBoth(rng, n, d, p)
		boxes := randomBoxes(rng, 1+rng.Intn(40), n, d)
		got := dt.CountBatch(boxes)
		for i, b := range boxes {
			if got[i] != int64(bf.Count(b)) {
				t.Logf("seed %d n=%d d=%d p=%d query %d: got %d want %d", seed, n, d, p, i, got[i], bf.Count(b))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReportBatchMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(6)
		dt, bf, _ := buildBoth(rng, n, d, p)
		boxes := randomBoxes(rng, 1+rng.Intn(25), n, d)
		got := dt.ReportBatch(boxes)
		for i, b := range boxes {
			want := brute.IDs(bf.Report(b))
			gotIDs := brute.IDs(got[i])
			if len(want) == 0 && len(gotIDs) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotIDs, want) {
				t.Logf("seed %d n=%d d=%d p=%d query %d: got %v want %v", seed, n, d, p, i, gotIDs, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAssociativeMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(6)
		dt, bf, _ := buildBoth(rng, n, d, p)
		weight := func(pt geom.Point) float64 { return float64(pt.ID%11) - 5 }
		hSum := PrepareAssociative(dt, semigroup.FloatSum(), weight)
		hMax := PrepareAssociative(dt, semigroup.MaxFloat(), weight)
		boxes := randomBoxes(rng, 1+rng.Intn(20), n, d)
		sums := hSum.Batch(boxes)
		maxs := hMax.Batch(boxes)
		for i, b := range boxes {
			if sums[i] != brute.Aggregate(bf, semigroup.FloatSum(), weight, b) {
				return false
			}
			if maxs[i] != brute.Aggregate(bf, semigroup.MaxFloat(), weight, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPowersOfTwoExactShape(t *testing.T) {
	// With n and p powers of two the paper's counts are exact: p primary
	// stubs, hat of the primary tree = top log p levels.
	rng := rand.New(rand.NewSource(5))
	n, d, p := 256, 2, 8
	dt, _, _ := buildBoth(rng, n, d, p)
	primaryElems := 0
	for _, info := range dt.Info() {
		if info.Dim == 0 {
			primaryElems++
		}
	}
	if primaryElems != p {
		t.Errorf("primary forest elements = %d, want p = %d", primaryElems, p)
	}
	if dt.Grain() != n/p {
		t.Errorf("grain = %d, want %d", dt.Grain(), n/p)
	}
}

func TestTheorem1SizeBounds(t *testing.T) {
	// Theorem 1: |H| = O(p log^(d-1) p) and |F_i| = O(s/p).
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, d, p int }{
		{512, 1, 8}, {512, 2, 8}, {256, 3, 4}, {1024, 2, 16},
	} {
		dt, _, _ := buildBoth(rng, tc.n, tc.d, tc.p)
		logp := 1
		for x := tc.p; x > 1; x >>= 1 {
			logp++
		}
		hatBound := 8 * tc.p * pow(logp, tc.d-1) * tc.d // generous constant
		if got := dt.HatNodeCount(); got > hatBound {
			t.Errorf("n=%d d=%d p=%d: |H| = %d exceeds bound %d", tc.n, tc.d, tc.p, got, hatBound)
		}
		parts := dt.ForestPartNodes()
		total := 0
		mx := 0
		for _, s := range parts {
			total += s
			if s > mx {
				mx = s
			}
		}
		if total == 0 {
			t.Fatalf("n=%d d=%d p=%d: empty forest", tc.n, tc.d, tc.p)
		}
		// max part ≤ 4× average (O(s/p) with a small constant).
		if mx > 4*(total/tc.p+1) {
			t.Errorf("n=%d d=%d p=%d: max |F_i| = %d vs avg %d", tc.n, tc.d, tc.p, mx, total/tc.p)
		}
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func TestConstructRoundsConstantInN(t *testing.T) {
	// Corollary 1: construction takes O(1) h-relations, independent of n.
	rounds := func(n int) int {
		rng := rand.New(rand.NewSource(9))
		pts := randomPoints(rng, n, 2)
		mach := cgm.New(cgm.Config{P: 4})
		Build(mach, pts)
		return mach.Metrics().CommRounds()
	}
	r1, r2 := rounds(128), rounds(2048)
	if r1 != r2 {
		t.Errorf("construction rounds vary with n: %d vs %d", r1, r2)
	}
}

func TestSearchRoundsConstantInN(t *testing.T) {
	// Corollary 2: the batched search takes O(1) h-relations.
	rounds := func(n int) int {
		rng := rand.New(rand.NewSource(11))
		pts := randomPoints(rng, n, 2)
		mach := cgm.New(cgm.Config{P: 4})
		dt := Build(mach, pts)
		mach.ResetMetrics()
		dt.CountBatch(randomBoxes(rng, n, n, 2))
		return mach.Metrics().CommRounds()
	}
	r1, r2 := rounds(64), rounds(1024)
	if r1 != r2 {
		t.Errorf("search rounds vary with n: %d vs %d", r1, r2)
	}
	if r1 > 8 {
		t.Errorf("search uses %d rounds, want a small constant", r1)
	}
}

func TestSingleProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dt, bf, _ := buildBoth(rng, 60, 2, 1)
	boxes := randomBoxes(rng, 20, 60, 2)
	got := dt.CountBatch(boxes)
	for i, b := range boxes {
		if got[i] != int64(bf.Count(b)) {
			t.Fatalf("p=1 query %d: %d vs %d", i, got[i], bf.Count(b))
		}
	}
}

func TestMoreProcsThanPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dt, bf, _ := buildBoth(rng, 5, 2, 8)
	boxes := randomBoxes(rng, 10, 5, 2)
	got := dt.CountBatch(boxes)
	for i, b := range boxes {
		if got[i] != int64(bf.Count(b)) {
			t.Fatalf("p>n query %d: %d vs %d", i, got[i], bf.Count(b))
		}
	}
}

func TestEmptyAndFullBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 64
	dt, _, _ := buildBoth(rng, n, 2, 4)
	inverted := geom.NewBox([]geom.Coord{50, 1}, []geom.Coord{2, 64})
	everything := geom.NewBox([]geom.Coord{1, 1}, []geom.Coord{64, 64})
	got := dt.CountBatch([]geom.Box{inverted, everything})
	if got[0] != 0 {
		t.Errorf("inverted box count = %d", got[0])
	}
	if got[1] != int64(n) {
		t.Errorf("full box count = %d, want %d", got[1], n)
	}
	rep := dt.ReportBatch([]geom.Box{everything})
	if len(rep[0]) != n {
		t.Errorf("full box report = %d points", len(rep[0]))
	}
}

func TestEmptyQueryBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dt, _, _ := buildBoth(rng, 32, 2, 4)
	if dt.CountBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
	if dt.ReportBatch(nil) != nil {
		t.Error("empty report batch should return nil")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 100, 2)
	boxes := randomBoxes(rng, 30, 100, 2)
	run := func() []int64 {
		mach := cgm.New(cgm.Config{P: 4})
		dt := Build(mach, pts)
		return dt.CountBatch(boxes)
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("results differ across identical runs")
	}
}

func TestBuildValidation(t *testing.T) {
	mach := cgm.New(cgm.Config{P: 2})
	for name, pts := range map[string][]geom.Point{
		"empty": nil,
		"ragged": {
			{ID: 0, X: []geom.Coord{1, 2}},
			{ID: 1, X: []geom.Coord{3}},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Build(mach, pts)
		}()
	}
}

func TestQueryDimMismatchAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dt, _, _ := buildBoth(rng, 32, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected abort on query dim mismatch")
		}
	}()
	dt.CountBatch([]geom.Box{geom.NewBox([]geom.Coord{1}, []geom.Coord{5})})
}

func TestSkewedDemandGetsCopies(t *testing.T) {
	// Every query targets the same narrow column: one forest group is
	// congested and must be replicated (the c_j mechanism).
	rng := rand.New(rand.NewSource(25))
	n, p := 512, 8
	dt, bf, pts := buildBoth(rng, n, 2, p)
	// A box around a single point, repeated n times: all subqueries hit
	// the same primary element.
	target := pts[rng.Intn(n)]
	boxes := make([]geom.Box, n)
	for i := range boxes {
		boxes[i] = geom.NewBox(
			[]geom.Coord{target.X[0] - 1, 1},
			[]geom.Coord{target.X[0] + 1, geom.Coord(n)},
		)
	}
	got := dt.CountBatch(boxes)
	want := int64(bf.Count(boxes[0]))
	for i := range got {
		if got[i] != want {
			t.Fatalf("query %d: %d vs %d", i, got[i], want)
		}
	}
	st := dt.LastSearchStats()
	totalServed, maxServed, totalSubs := 0, 0, 0
	for _, s := range st {
		totalServed += s.Served
		totalSubs += s.Subqueries
		if s.Served > maxServed {
			maxServed = s.Served
		}
	}
	if totalServed != totalSubs {
		t.Fatalf("served %d != subqueries %d", totalServed, totalSubs)
	}
	if totalSubs == 0 {
		t.Skip("workload produced no subqueries")
	}
	// Balance: no processor serves more than ~2/p of the demand + slack.
	if maxServed > 2*totalSubs/p+2 {
		t.Errorf("congested: max served %d of %d on p=%d", maxServed, totalSubs, p)
	}
}

func TestReportBalance(t *testing.T) {
	// Theorem 4: every processor materializes O(k/p) pairs.
	rng := rand.New(rand.NewSource(27))
	n, p := 512, 8
	dt, bf, _ := buildBoth(rng, n, 2, p)
	boxes := randomBoxes(rng, 64, n, 2)
	results, perProc := dt.ReportBatchBalance(boxes)
	k := 0
	for i, b := range boxes {
		k += len(results[i])
		if len(results[i]) != bf.Count(b) {
			t.Fatalf("query %d wrong size", i)
		}
	}
	if k == 0 {
		t.Skip("no results")
	}
	mx := 0
	for _, c := range perProc {
		if c > mx {
			mx = c
		}
	}
	if mx > k/p+k/8+2 { // k/p plus generous rounding slack
		t.Errorf("report imbalance: max %d of k=%d on p=%d (%v)", mx, k, p, perProc)
	}
}

func TestCopiesBounded(t *testing.T) {
	// The balancing lemma: each processor hosts O(1) copies of any group,
	// i.e. total copied elements ≤ 2 × the biggest part.
	rng := rand.New(rand.NewSource(29))
	n, p := 256, 4
	dt, _, _ := buildBoth(rng, n, 2, p)
	boxes := randomBoxes(rng, 256, n, 2)
	dt.CountBatch(boxes)
	maxOwned := 0
	for _, ps := range dt.procs {
		if len(ps.elems) > maxOwned {
			maxOwned = len(ps.elems)
		}
	}
	for rank, s := range dt.LastSearchStats() {
		if s.CopiesHeld > 2*maxOwned {
			t.Errorf("processor %d holds %d copies (max part %d)", rank, s.CopiesHeld, maxOwned)
		}
	}
}

func TestHatReplicasIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dt, _, _ := buildBoth(rng, 128, 2, 4)
	ref := dt.procs[0]
	for rank := 1; rank < 4; rank++ {
		ps := dt.procs[rank]
		if len(ps.hat) != len(ref.hat) {
			t.Fatalf("replica %d has %d hat trees, want %d", rank, len(ps.hat), len(ref.hat))
		}
		for i := range ps.hat {
			a, b := ps.hat[i], ref.hat[i]
			if a.Key != b.Key || a.Dim != b.Dim || a.Shape != b.Shape {
				t.Fatalf("replica %d tree %d header differs", rank, i)
			}
			if !reflect.DeepEqual(a.nodes, b.nodes) || !reflect.DeepEqual(a.present, b.present) {
				t.Fatalf("replica %d tree %d nodes differ", rank, i)
			}
		}
		if !reflect.DeepEqual(ps.info, ref.info) {
			t.Fatalf("replica %d element info differs", rank)
		}
	}
}

func TestForestPartitionCoversPoints(t *testing.T) {
	// The dimension-0 elements partition the input: their counts sum to n
	// and every point appears exactly once.
	rng := rand.New(rand.NewSource(33))
	n := 200
	dt, _, _ := buildBoth(rng, n, 3, 4)
	seen := map[int32]int{}
	total := 0
	for _, ps := range dt.procs {
		for _, el := range ps.elems {
			if el.info.Dim != 0 {
				continue
			}
			total += len(el.pts)
			for _, pt := range el.pts {
				seen[pt.ID]++
			}
		}
	}
	if total != n {
		t.Errorf("dim-0 forest covers %d points, want %d", total, n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("point %d appears %d times", id, c)
		}
	}
}

func TestOwnersMatchInfo(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	dt, _, _ := buildBoth(rng, 100, 2, 4)
	for rank, ps := range dt.procs {
		for id, el := range ps.elems {
			if int(el.info.Owner) != rank {
				t.Fatalf("element %d stored at %d but owned by %d", id, rank, el.info.Owner)
			}
			if dt.Info()[int(id)].Owner != el.info.Owner {
				t.Fatalf("element %d info inconsistent", id)
			}
		}
	}
}

// TestDuplicateCoordinates drops the rank-normalization precondition:
// heavy coordinate duplication must still produce exact results (ordering
// falls back to point IDs everywhere).
func TestDuplicateCoordinates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(6)
		pts := make([]geom.Point, n)
		for i := range pts {
			x := make([]geom.Coord, d)
			for j := range x {
				x[j] = geom.Coord(rng.Intn(5)) // 5 distinct values only
			}
			pts[i] = geom.Point{ID: int32(i), X: x}
		}
		mach := cgm.New(cgm.Config{P: p})
		dt := Build(mach, pts)
		if dt.Verify() != nil {
			return false
		}
		bf := brute.New(pts)
		for q := 0; q < 10; q++ {
			lo := make([]geom.Coord, d)
			hi := make([]geom.Coord, d)
			for j := 0; j < d; j++ {
				a, b := geom.Coord(rng.Intn(6)), geom.Coord(rng.Intn(6))
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			box := geom.Box{Lo: lo, Hi: hi}
			if dt.CountBatch([]geom.Box{box})[0] != int64(bf.Count(box)) {
				return false
			}
			if !reflect.DeepEqual(brute.IDs(dt.ReportBatch([]geom.Box{box})[0]), brute.IDs(bf.Report(box))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMeasuredModeBuildAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := randomPoints(rng, 128, 2)
	mach := cgm.New(cgm.Config{P: 4, Mode: cgm.Measured})
	dt := Build(mach, pts)
	bf := brute.New(pts)
	boxes := randomBoxes(rng, 32, 128, 2)
	got := dt.CountBatch(boxes)
	for i, b := range boxes {
		if got[i] != int64(bf.Count(b)) {
			t.Fatalf("measured mode query %d wrong", i)
		}
	}
	if mach.Metrics().TotalWork() <= 0 {
		t.Error("measured mode recorded no work")
	}
}
