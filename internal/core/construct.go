package core

import (
	"cmp"
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/geom"
	"repro/internal/psort"
	"repro/internal/segtree"
)

// srec is a record of the paper's set S^j: a leaf of a dimension-j segment
// tree that still has to be constructed, carrying the full point and the
// label (PathKey) of the tree it belongs to (Construct step 1/7).
type srec struct {
	Pt  geom.Point
	Key segtree.PathKey
}

// epoint is an element-routed point (Construct step 3).
type epoint struct {
	Elem ElemID
	Pt   geom.Point
}

// elemMeta is the stub metadata broadcast in Construct steps 4–5 so every
// processor can finish its replica of the dimension-j hat trees.
type elemMeta struct {
	Elem     ElemID
	Min, Max geom.Coord
}

// treeSum summarises one dimension-j segment tree during construction.
type treeSum struct {
	Key   segtree.PathKey
	M     int // leaf count
	Start int // global offset of its first leaf in the sorted S^j
	Elem0 ElemID
}

// runSum is a per-processor run of equal-keyed records in the sorted S^j.
type runSum struct {
	Key   segtree.PathKey
	Count int
}

// Build runs Algorithm Construct (§3) on mach with the default element
// backend (the layered tree): it distributes pts in blocks of n/p, then
// constructs the distributed range tree in d phases, each phase sorting
// the segment-tree leaves S^j, routing forest-element groups to their
// owners (k mod p), building forest elements sequentially, broadcasting
// the stub roots, and rebuilding the dimension-j hat layer on every
// processor.
func Build(mach *cgm.Machine, pts []geom.Point) *Tree {
	return BuildBackend(mach, pts, BackendLayered)
}

// BuildBackend runs Algorithm Construct with an explicit element backend
// (forest elements and their phase-B copies are built on it).
func BuildBackend(mach *cgm.Machine, pts []geom.Point, be Backend) *Tree {
	n := len(pts)
	if n == 0 {
		panic("core: empty point set")
	}
	dims := pts[0].Dims()
	if dims < 1 {
		panic("core: points need at least one dimension")
	}
	for i, p := range pts {
		if p.Dims() != dims {
			panic(fmt.Sprintf("core: point %d has %d dims, want %d", i, p.Dims(), dims))
		}
	}
	return BuildFromSource(mach, sliceSource{pts: pts, dims: dims}, be)
}

// BuildWorkerFed builds from a coordinator-held slice but feeds the
// workers directly when the machine is resident: the canonical blocks are
// staged into the ranks' parts first, then construction runs as the
// resident program with only sampling traffic transiting the coordinator.
// On a fabric machine it is exactly BuildBackend. Canonical staging keeps
// the round/h/volume metrics identical to BuildBackend's, which is what
// lets the store compactor switch paths without perturbing measurements.
func BuildWorkerFed(mach *cgm.Machine, pts []geom.Point, be Backend) *Tree {
	if !mach.Resident() {
		return BuildBackend(mach, pts, be)
	}
	src, err := StageBlocks(mach, CanonicalBlocks(pts, mach.P()))
	if err != nil {
		panic(fmt.Sprintf("core: staging worker blocks: %v", err))
	}
	return BuildFromSource(mach, src, be)
}

// newTreeShell allocates the Tree scaffolding every build path shares.
func newTreeShell(mach *cgm.Machine, n, dims int, be Backend) *Tree {
	p := mach.P()
	return &Tree{
		mach:       mach,
		n:          n,
		dims:       dims,
		resident:   mach.Resident(),
		grain:      (n + p - 1) / p,
		backend:    be,
		procs:      make([]*procState, p),
		lastCopied: make([]atomic.Int64, p),
	}
}

// BuildOn runs Algorithm Construct on a machine supplied by the provider
// — the seam that lets the same construction run on the in-process
// simulator (cgm.LocalProvider) or on a TCP worker cluster
// (transport.Cluster) without the caller holding a machine.
func BuildOn(pv cgm.Provider, pts []geom.Point, be Backend) (*Tree, error) {
	mach, err := pv.NewMachine()
	if err != nil {
		return nil, fmt.Errorf("core: provider machine: %w", err)
	}
	return BuildBackend(mach, pts, be), nil
}

// construct is the per-processor body of Algorithm Construct.
func (t *Tree) construct(pr *cgm.Proc, src PointSource, seeded []int) {
	rank, p := pr.Rank(), pr.P()
	ps := &procState{
		rank:      rank,
		hatByKey:  make(map[segtree.PathKey]int32),
		elems:     make(map[ElemID]*element),
		copies:    make(map[ElemID]*element),
		copyCache: make(map[ElemID]*element),
	}
	t.procs[rank] = ps
	if t.resident {
		// Reset the rank's resident part: this machine's forest is about
		// to be built into it (a reused session must not merge forests).
		// Staged ingest blocks survive the reset — they are this build's
		// input.
		cgm.CallResident[beginArgs, bool](pr, fref("construct/begin"), beginArgs{Backend: t.backend})
	}

	if t.resident && src.Held() {
		// The rank's block is already staged worker-side: seed the S^0
		// records where the points live and run the held phases — the
		// point payloads never visit the coordinator.
		seeded[rank] = cgm.CallResident[seedArgs, int](pr, fref("construct/seed"),
			seedArgs{Dims: int8(t.dims)})
		var nextElem ElemID
		for j := 0; j < t.dims; j++ {
			nextElem = t.constructPhaseHeld(pr, ps, j, nextElem)
		}
		return
	}

	// Step 1: each processor starts with an arbitrary block of n/p points;
	// every initial record belongs to the primary tree (index nil).
	block := src.Block(rank, p)
	recs := make([]srec, 0, len(block))
	for _, pt := range block {
		recs = append(recs, srec{Pt: pt, Key: segtree.RootPathKey})
	}

	var nextElem ElemID
	for j := 0; j < t.dims; j++ {
		recs, nextElem = t.constructPhase(pr, ps, recs, j, nextElem)
	}
}

// srecLess orders the S^j records: primary key index (tree label), then
// x_j, ties by point ID for determinism. Shared by the coordinator-side
// sort and the worker-side held-sort steps so the orders cannot drift.
func srecLess(j int) func(a, b srec) bool {
	return func(a, b srec) bool {
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Pt.X[j] != b.Pt.X[j] {
			return a.Pt.X[j] < b.Pt.X[j]
		}
		return a.Pt.ID < b.Pt.ID
	}
}

// constructPhase builds all dimension-j segment trees: the hat layer
// replicated everywhere and the forest elements at their owners. It
// returns the records of S^(j+1).
func (t *Tree) constructPhase(pr *cgm.Proc, ps *procState, recs []srec, j int, nextElem ElemID) ([]srec, ElemID) {
	p := pr.P()
	lbl := func(step string) string { return fmt.Sprintf("construct/d%d/%s", j, step) }

	// Step 2: globally sort S^j by primary key index (tree label) and
	// secondary key x_j (ties by point ID for determinism).
	sorted := psort.Sort(pr, lbl("sort"), recs, srecLess(j))

	// Tree discovery: exchange per-processor runs of equal keys; all
	// processors derive the identical, label-ordered tree summary list.
	allRuns := comm.AllGatherFlat(pr, lbl("runs"), keyRuns(sorted))
	trees := deriveTrees(allRuns)

	nStubs, myInfos := t.enumerateStubs(pr, ps, trees, j, nextElem)

	// Step 3: route every record to the owner of the element containing
	// its global position.
	myOffset, _ := comm.CountScan(pr, lbl("offset"), len(sorted))
	out, err := routeRecords(sorted, trees, t.grain, myOffset, p)
	if err != nil {
		panic(err.Error())
	}
	// Step 4: sequentially construct the owned forest elements. Records
	// arrive rank-major and sorted within each source; element point sets
	// occupy contiguous global ranges, so concatenation is leaf order.
	// On a resident machine the same route superstep delivers its column
	// to the construct/install step instead: the elements are built
	// directly into the rank's resident state (worker memory over TCP)
	// and only the stub metadata comes back.
	var metas []elemMeta
	var grouped map[ElemID][]geom.Point
	if t.resident {
		metas = cgm.ExchangeCollect[epoint, constructInstallArgs, []elemMeta](
			pr, lbl("route"), out, fref("construct/install"),
			constructInstallArgs{Backend: t.backend, Infos: myInfos})
	} else {
		incoming := cgm.Exchange(pr, lbl("route"), out)
		var err error
		grouped, metas, err = buildForestElements(t.backend,
			func(id ElemID) (ElemInfo, bool) { return ps.info[int(id)], true }, // dense ids: index == id
			incoming, func(el *element) { ps.elems[el.info.ID] = el })
		if err != nil {
			panic(err.Error())
		}
	}

	// Steps 4–5: all-to-all broadcast of the forest roots (the hat's
	// leaves); every processor completes its dimension-j hat trees.
	t.finishPhase(pr, ps, trees, metas, j, lbl)

	// Step 7: create S^(j+1): every record walks from its stub's parent to
	// the root of its segment tree, creating one record per hat-internal
	// ancestor u with index path(u). Resident machines compute the records
	// where the points live and return them for the next phase's sort.
	var next []srec
	if j+1 < t.dims {
		if t.resident {
			next = cgm.CallResident[nextArgs, []srec](pr, fref("construct/next"), nextArgs{Dim: int8(j)})
		} else {
			for _, id := range sortedElemIDs(grouped) {
				next = nextDimRecords(ps.elems[id], next)
			}
		}
	}
	return next, nextElem + ElemID(nStubs)
}

// constructPhaseHeld is constructPhase with the S^j records held in the
// ranks' resident parts: the sample sort's local phases, the record
// exchanges and the element routing all run as registered program steps,
// while the coordinator's collectives carry only the p² regular samples,
// the splitters, the run/offset counts and the replicated stub metadata —
// O(p²) per phase, independent of n. The label sequence and per-rank
// element counts are identical to constructPhase's, so a canonically
// staged build produces byte-identical Metrics.
func (t *Tree) constructPhaseHeld(pr *cgm.Proc, ps *procState, j int, nextElem ElemID) ElemID {
	p := pr.P()
	lbl := func(step string) string { return fmt.Sprintf("construct/d%d/%s", j, step) }
	dim := dimArgs{Dim: int8(j)}

	// Step 2 (sample sort, records held): local sort and sample selection
	// run worker-side; only the samples are gathered, every rank derives
	// the identical splitters, and the partition/merge and rebalance
	// supersteps move the records worker-to-worker.
	sl := cgm.CallResident[dimArgs, sortLocalReply](pr, fref("construct/sortLocal"), dim)
	allSamples := comm.AllGatherFlat(pr, lbl("sort")+"/sample", sl.Samples)
	splitters := psort.Splitters(allSamples, p, srecLess(j))
	_, merged := cgm.ExchangeSteps[wsortPartArgs, dimArgs, lenReply](pr, lbl("sort")+"/route",
		fref("construct/wsortPart"), wsortPartArgs{Dim: int8(j), Splitters: splitters},
		fref("construct/wsortMerge"), dim)
	offset, total := comm.CountScan(pr, lbl("sort")+"/balance/count", merged.Len)
	_, bal := cgm.ExchangeSteps[wsortBalanceArgs, bool, balanceReply](pr, lbl("sort")+"/balance",
		fref("construct/wsortSplit"), wsortBalanceArgs{Offset: offset, Total: total},
		fref("construct/wsortGather"), false)

	// Tree discovery from the worker-computed key runs; stub enumeration
	// stays replicated coordinator-side (it is metadata, not points).
	allRuns := comm.AllGatherFlat(pr, lbl("runs"), bal.Runs)
	trees := deriveTrees(allRuns)
	nStubs, myInfos := t.enumerateStubs(pr, ps, trees, j, nextElem)

	// Step 3–4: the routing loop runs where the records live; the routed
	// points go worker-to-worker into the install collect.
	myOffset, _ := comm.CountScan(pr, lbl("offset"), bal.Len)
	_, metas := cgm.ExchangeSteps[routeHeldArgs, constructInstallArgs, []elemMeta](pr, lbl("route"),
		fref("construct/routeHeld"), routeHeldArgs{Trees: trees, Grain: t.grain, Offset: myOffset},
		fref("construct/install"), constructInstallArgs{Backend: t.backend, Infos: myInfos})

	t.finishPhase(pr, ps, trees, metas, j, lbl)

	// Step 7: the S^(j+1) records are computed AND kept worker-side; only
	// their count returns.
	if j+1 < t.dims {
		cgm.CallResident[nextArgs, int](pr, fref("construct/nextHeld"), nextArgs{Dim: int8(j)})
	}
	return nextElem + ElemID(nStubs)
}

// keyRuns summarises the locally sorted records as runs of equal keys —
// the tree-discovery rows of Construct step 2.
func keyRuns(sorted []srec) []runSum {
	var runs []runSum
	for i := 0; i < len(sorted); {
		k := sorted[i].Key
		c := 0
		for i < len(sorted) && sorted[i].Key == k {
			i++
			c++
		}
		runs = append(runs, runSum{Key: k, Count: c})
	}
	return runs
}

// deriveTrees merges the gathered runs (rank-major, each rank's runs in
// key order) into the label-ordered tree summary list with global start
// offsets — identical on every processor.
func deriveTrees(allRuns []runSum) []treeSum {
	var trees []treeSum
	for _, r := range allRuns {
		if len(trees) > 0 && trees[len(trees)-1].Key == r.Key {
			trees[len(trees)-1].M += r.Count
		} else {
			trees = append(trees, treeSum{Key: r.Key, M: r.Count})
		}
	}
	start := 0
	for i := range trees {
		trees[i].Start = start
		start += trees[i].M
	}
	return trees
}

// enumerateStubs performs the replicated, deterministic stub enumeration:
// elements are numbered in (tree label, position) order and owned by
// P_(id mod p) — Construct step 3's "route the k-th group to processor
// P_(k mod p)". It assigns every tree's Elem0, appends the phase's
// ElemInfo records to ps.info, and returns the stub count plus this
// rank's owned share (the resident install metadata).
func (t *Tree) enumerateStubs(pr *cgm.Proc, ps *procState, trees []treeSum, j int, nextElem ElemID) (int, []ElemInfo) {
	p := pr.P()
	type stubRef struct {
		tree int
		stub segtree.Stub
	}
	var stubs []stubRef
	for ti := range trees {
		shape := segtree.NewShape(trees[ti].M)
		trees[ti].Elem0 = nextElem + ElemID(len(stubs))
		for _, st := range shape.Stubs(t.grain) {
			stubs = append(stubs, stubRef{tree: ti, stub: st})
		}
	}
	var myInfos []ElemInfo // this rank's share of the phase (resident install)
	for si, sr := range stubs {
		id := nextElem + ElemID(si)
		info := ElemInfo{
			ID:    id,
			Owner: int32(int(id) % p),
			Count: int32(sr.stub.Count),
			Dim:   int8(j),
			Key:   trees[sr.tree].Key.Extend(sr.stub.Node),
		}
		ps.info = append(ps.info, info)
		if t.resident && int(info.Owner) == ps.rank {
			myInfos = append(myInfos, info)
		}
	}
	return len(stubs), myInfos
}

// routeRecords is Construct step 3's routing loop, shared by the
// coordinator-side phase and the resident routeHeld emit: every globally
// sorted record (this rank's run starting at global position offset) goes
// to the owner of the element whose stub contains its position.
func routeRecords(sorted []srec, trees []treeSum, grain, offset, p int) ([][]epoint, error) {
	out := make([][]epoint, p)
	ti := 0
	var treeStubs []segtree.Stub
	loadStubs := func(ti int) {
		treeStubs = segtree.NewShape(trees[ti].M).Stubs(grain)
	}
	if len(trees) > 0 {
		loadStubs(0)
	}
	for i, r := range sorted {
		g := offset + i
		for g >= trees[ti].Start+trees[ti].M {
			ti++
			loadStubs(ti)
		}
		if r.Key != trees[ti].Key {
			return nil, fmt.Errorf("core: construct routing lost tree alignment")
		}
		pos := g - trees[ti].Start
		si := segtree.StubContaining(treeStubs, pos)
		id := trees[ti].Elem0 + ElemID(si)
		owner := int(id) % p
		out[owner] = append(out[owner], epoint{Elem: id, Pt: r.Pt})
	}
	return out, nil
}

// finishPhase is Construct steps 4–5's tail: all-to-all broadcast of the
// forest roots (the hat's leaves), span fill-in, and the replicated
// dimension-j hat build.
func (t *Tree) finishPhase(pr *cgm.Proc, ps *procState, trees []treeSum, metas []elemMeta, j int, lbl func(string) string) {
	allMetas := comm.AllGatherFlat(pr, lbl("roots"), metas)
	for _, mt := range allMetas {
		ps.info[int(mt.Elem)].Min = mt.Min
		ps.info[int(mt.Elem)].Max = mt.Max
	}
	for _, el := range ps.elems { // owner's own replica also needs spans
		el.info = ps.info[int(el.info.ID)]
	}
	for ti := range trees {
		t.buildHatTree(ps, trees[ti], j)
	}
}

// buildForestElements is Construct step 4's body, shared by the fabric
// branch and the resident install step (one policy, one source of
// truth): group the phase's routed records by element, validate counts
// against the replicated metadata, build the sequential trees, and
// return the grouped points plus the stub metadata sorted by element.
// Records arrive rank-major and sorted within each source; element
// point sets occupy contiguous global ranges, so concatenation is leaf
// order.
func buildForestElements(be Backend, infoOf func(ElemID) (ElemInfo, bool), incoming [][]epoint,
	install func(*element)) (map[ElemID][]geom.Point, []elemMeta, error) {
	grouped := make(map[ElemID][]geom.Point)
	for _, part := range incoming {
		for _, ep := range part {
			grouped[ep.Elem] = append(grouped[ep.Elem], ep.Pt)
		}
	}
	var metas []elemMeta
	for id, epts := range grouped {
		info, ok := infoOf(id)
		if !ok {
			return nil, nil, fmt.Errorf("core: routed points for element %d this rank does not own", id)
		}
		if int32(len(epts)) != info.Count {
			return nil, nil, fmt.Errorf("core: element %d received %d points, expected %d", id, len(epts), info.Count)
		}
		j := int(info.Dim)
		install(&element{info: info, pts: epts, tree: buildElemTree(be, epts, j)})
		metas = append(metas, elemMeta{Elem: id, Min: epts[0].X[j], Max: epts[len(epts)-1].X[j]})
	}
	slices.SortFunc(metas, func(a, b elemMeta) int { return cmp.Compare(a.Elem, b.Elem) })
	return grouped, metas, nil
}

// nextDimRecords is Construct step 7's per-element walk, shared by the
// fabric branch and the resident step: the element's points ascend from
// the stub's parent to its segment tree's root, one S^(j+1) record per
// hat-internal ancestor.
func nextDimRecords(el *element, next []srec) []srec {
	key := el.info.Key
	comps := key.Components()
	stubNode := int(comps[len(comps)-1])
	treeKey := parentKey(key)
	for u := segtree.Parent(stubNode); u >= 1; u = segtree.Parent(u) {
		anchor := treeKey.Extend(u)
		for _, pt := range el.pts {
			next = append(next, srec{Pt: pt, Key: anchor})
		}
	}
	return next
}

// sortedElemIDs returns the map keys in increasing order (deterministic
// record emission).
func sortedElemIDs(m map[ElemID][]geom.Point) []ElemID {
	ids := make([]ElemID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b ElemID) int { return cmp.Compare(a, b) })
	return ids
}

// parentKey strips the last chain component of a PathKey.
func parentKey(k segtree.PathKey) segtree.PathKey {
	comps := k.Components()
	out := segtree.RootPathKey
	for _, c := range comps[:len(comps)-1] {
		out = out.Extend(int(c))
	}
	return out
}

// buildHatTree assembles one replicated dimension-j hat tree from the
// element metadata: stubs become hat leaves, their hat-internal ancestors
// get counts from the shape and spans from their children, and the tree is
// linked to its anchor node in the previous dimension.
func (t *Tree) buildHatTree(ps *procState, ts treeSum, j int) {
	shape := segtree.NewShape(ts.M)
	stubs := shape.Stubs(t.grain)
	// Every hat node is a stub or a stub's ancestor (smaller heap index),
	// so the dense node store only spans [0, max stub index].
	limit := shape.Root() + 1
	for _, st := range stubs {
		if st.Node >= limit {
			limit = st.Node + 1
		}
	}
	ht := newHatTree(int32(len(ps.hat)), ts.Key, int8(j), shape, limit)
	for si, st := range stubs {
		info := ps.info[int(ts.Elem0)+si]
		ht.setNode(st.Node, HatNode{
			Count: int32(st.Count),
			Min:   info.Min,
			Max:   info.Max,
			Elem:  info.ID,
			Desc:  -1,
		})
	}
	// Hat-internal ancestors, bottom-up from the stubs.
	var fill func(v int) (geom.Coord, geom.Coord)
	fill = func(v int) (geom.Coord, geom.Coord) {
		if nd, ok := ht.Node(v); ok { // stub
			return nd.Min, nd.Max
		}
		var mn, mx geom.Coord
		first := true
		for _, c := range []int{segtree.Left(v), segtree.Right(v)} {
			if shape.Count(c) == 0 {
				continue
			}
			cmn, cmx := fill(c)
			if first {
				mn, mx = cmn, cmx
				first = false
			} else {
				if cmn < mn {
					mn = cmn
				}
				if cmx > mx {
					mx = cmx
				}
			}
		}
		ht.setNode(v, HatNode{Count: int32(shape.Count(v)), Min: mn, Max: mx, Elem: -1, Desc: -1})
		return mn, mx
	}
	fill(shape.Root())
	ps.hat = append(ps.hat, ht)
	ps.hatByKey[ts.Key] = ht.ID

	// Link to the anchor node of the previous dimension's hat.
	if ts.Key != segtree.RootPathKey {
		comps := ts.Key.Components()
		anchorNode := int(comps[len(comps)-1])
		parent := parentKey(ts.Key)
		pid, ok := ps.hatByKey[parent]
		if !ok {
			panic(fmt.Sprintf("core: hat tree %v has no parent %v", ts.Key, parent))
		}
		pt := ps.hat[pid]
		nd, ok := pt.Node(anchorNode)
		if !ok {
			panic(fmt.Sprintf("core: anchor node %d missing in %v", anchorNode, parent))
		}
		nd.Desc = ht.ID
		pt.setNode(anchorNode, nd)
	}
}
