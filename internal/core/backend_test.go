package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

var allBackends = []Backend{BackendLayered, BackendRangeTree, BackendBrute}

// TestCrossBackendOracle drives mixed Count/Aggregate/Report batches
// through the unified pipeline on every backend, over machine widths,
// both balance modes and d = 1..4, and checks each answer against the
// brute-force ground truth. The backends must be observably identical
// from outside the element layer.
func TestCrossBackendOracle(t *testing.T) {
	weight := func(p geom.Point) int64 { return int64(p.ID%5) + 1 }
	rng := rand.New(rand.NewSource(71))
	for _, p := range []int{1, 4, 7} {
		for _, balance := range []BalanceMode{GroupLevel, ElementLevel} {
			for d := 1; d <= 4; d++ {
				n := 40 + rng.Intn(260)
				pts := randomPoints(rng, n, d)
				bf := brute.New(pts)
				boxes := randomBoxes(rng, 24, n, d)
				ops := make([]MixedOp, len(boxes))
				for i := range ops {
					ops[i] = MixedOp(i % 3) // count, aggregate, report
				}
				for _, be := range allBackends {
					dt := BuildBackend(cgm.New(cgm.Config{P: p}), pts, be)
					if dt.Backend() != be {
						t.Fatalf("backend %v not recorded", be)
					}
					dt.SetBalanceMode(balance)
					if err := dt.Verify(); err != nil {
						t.Fatalf("p=%d d=%d backend=%v: verify: %v", p, d, be, err)
					}
					h := PrepareAssociative(dt, semigroup.IntSum(), weight)
					// Two rounds: the second runs with warm copy caches and
					// must be indistinguishable.
					for round := 0; round < 2; round++ {
						results := MixedBatch(dt, h, ops, boxes)
						for i, b := range boxes {
							switch ops[i] {
							case OpCount:
								if want := int64(bf.Count(b)); results[i].Count != want {
									t.Fatalf("p=%d bal=%v d=%d backend=%v round=%d q%d: count %d want %d",
										p, balance, d, be, round, i, results[i].Count, want)
								}
							case OpAggregate:
								if want := brute.Aggregate(bf, semigroup.IntSum(), weight, b); results[i].Agg != want {
									t.Fatalf("p=%d bal=%v d=%d backend=%v round=%d q%d: agg %d want %d",
										p, balance, d, be, round, i, results[i].Agg, want)
								}
							case OpReport:
								if got, want := brute.IDs(results[i].Pts), brute.IDs(bf.Report(b)); !reflect.DeepEqual(got, want) {
									t.Fatalf("p=%d bal=%v d=%d backend=%v round=%d q%d: report %v want %v",
										p, balance, d, be, round, i, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// skewedSetup builds a tree plus a query batch whose subqueries all
// congest a narrow strip of elements, forcing phase B to copy heavily —
// the workload the copy cache targets.
func skewedSetup(tb testing.TB, n, d, p, q int, be Backend) (*Tree, []geom.Box) {
	tb.Helper()
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, n, d)
	dt := BuildBackend(cgm.New(cgm.Config{P: p}), pts, be)
	boxes := make([]geom.Box, q)
	for i := range boxes {
		lo := make([]geom.Coord, d)
		hi := make([]geom.Coord, d)
		// A narrow strip in dimension 0 pinned to one hot region, partial
		// in the last dimension so the hat cannot resolve it (the query
		// must visit forest elements).
		lo[0] = geom.Coord(n/8 + rng.Intn(n/16))
		hi[0] = lo[0] + geom.Coord(n/16)
		for j := 1; j < d; j++ {
			lo[j] = geom.Coord(rng.Intn(n / 4))
			hi[j] = lo[j] + geom.Coord(n/2)
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return dt, boxes
}

// TestCopyCacheWarmSkipsRebuild asserts the cross-batch cache contract:
// batch 1 installs copies cold, batch 2 reinstalls the same copies from
// the cache, and invalidation forces a rebuild again.
func TestCopyCacheWarmSkipsRebuild(t *testing.T) {
	for _, mode := range []BalanceMode{GroupLevel, ElementLevel} {
		dt, boxes := skewedSetup(t, 2048, 2, 4, 96, BackendLayered)
		dt.SetBalanceMode(mode)

		want := dt.CountBatch(boxes)
		copies := 0
		for _, st := range dt.LastSearchStats() {
			copies += st.CopiesHeld
		}
		if copies == 0 {
			t.Fatalf("mode %v: skewed workload produced no copies; the cache test needs congestion", mode)
		}
		if hits := dt.LastCopyCacheHits(); hits != 0 {
			t.Errorf("mode %v: cold batch reported %d cache hits", mode, hits)
		}

		got := dt.CountBatch(boxes)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: warm batch changed answers", mode)
		}
		if hits := dt.LastCopyCacheHits(); hits != copies {
			t.Errorf("mode %v: warm batch hit cache %d times, want %d (all copies)", mode, hits, copies)
		}

		dt.InvalidateCopies()
		got = dt.CountBatch(boxes)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: post-invalidation batch changed answers", mode)
		}
		if hits := dt.LastCopyCacheHits(); hits != 0 {
			t.Errorf("mode %v: invalidated batch still hit cache %d times", mode, hits)
		}
	}
}

// TestCopyCacheServesAggregates runs the associative mode over a skewed
// workload twice: the warm batch must reuse both the copied elements and
// their annotations, and still answer correctly.
func TestCopyCacheServesAggregates(t *testing.T) {
	dt, boxes := skewedSetup(t, 1024, 2, 4, 64, BackendLayered)
	weight := func(p geom.Point) int64 { return int64(p.ID%3) + 1 }
	h := PrepareAssociative(dt, semigroup.IntSum(), weight)
	want := h.Batch(boxes)
	got := h.Batch(boxes)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm aggregate batch changed answers")
	}
	if dt.LastCopyCacheHits() == 0 {
		t.Error("warm aggregate batch installed no copies from the cache")
	}
}

// TestLastCopiedPointsRaceClean polls the copy-volume counter while
// batches run — the regression test for the unsynchronized per-rank
// writes (run under -race).
func TestLastCopiedPointsRaceClean(t *testing.T) {
	dt, boxes := skewedSetup(t, 1024, 2, 4, 64, BackendLayered)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = dt.LastCopiedPoints()
			}
		}
	}()
	for i := 0; i < 5; i++ {
		dt.CountBatch(boxes)
		dt.InvalidateCopies() // keep the copy path busy every batch
	}
	close(done)
	wg.Wait()
	if dt.LastCopiedPoints() == 0 {
		t.Error("skewed batches shipped no copy volume")
	}
}

// TestCopyCacheCapBoundsMemory asserts the cache bound: a cap of 1 keeps
// every processor's cache at one entry, a negative cap disables caching
// entirely, and answers never change either way.
func TestCopyCacheCapBoundsMemory(t *testing.T) {
	dt, boxes := skewedSetup(t, 2048, 2, 4, 96, BackendLayered)
	want := dt.CountBatch(boxes)

	dt.SetCopyCacheCap(1)
	dt.InvalidateCopies()
	got := dt.CountBatch(boxes)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("capped cache changed answers")
	}
	for rank, ps := range dt.procs {
		if len(ps.copyCache) > 1 {
			t.Errorf("rank %d cache holds %d entries, cap is 1", rank, len(ps.copyCache))
		}
	}

	dt.SetCopyCacheCap(-1)
	dt.InvalidateCopies()
	dt.CountBatch(boxes)
	got = dt.CountBatch(boxes)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disabled cache changed answers")
	}
	if hits := dt.LastCopyCacheHits(); hits != 0 {
		t.Errorf("disabled cache still hit %d times", hits)
	}
	for rank, ps := range dt.procs {
		if len(ps.copyCache) != 0 {
			t.Errorf("rank %d cache holds %d entries while disabled", rank, len(ps.copyCache))
		}
	}
}

// TestInvalidateSweepsCache asserts invalidation frees the cached copies
// (the stranded-memory regression): after InvalidateCopies, the next
// batch's install sweeps every processor's cache before refilling it.
func TestInvalidateSweepsCache(t *testing.T) {
	dt, boxes := skewedSetup(t, 2048, 2, 4, 96, BackendLayered)
	dt.CountBatch(boxes)
	dt.InvalidateCopies()
	// Serve a batch with no forest crossings: the sweep must still run on
	// install-free processors' next install, so check after a real batch.
	dt.CountBatch(boxes)
	for rank, ps := range dt.procs {
		for id := range ps.copyCache {
			if ps.cacheEpoch != dt.epoch.Load() {
				t.Errorf("rank %d holds entry %d from a stale epoch", rank, id)
			}
		}
	}
}

// TestSingleQueryWorkConcurrentWithBatch exercises the reentrancy fix:
// SingleQueryWork descends over a local stack, so calling it from the
// caller's goroutine while a batch runs on the same tree is race-free.
func TestSingleQueryWorkConcurrentWithBatch(t *testing.T) {
	dt, boxes := skewedSetup(t, 1024, 2, 4, 64, BackendLayered)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = dt.SingleQueryWork(boxes[0])
			}
		}
	}()
	for i := 0; i < 5; i++ {
		dt.CountBatch(boxes)
	}
	close(done)
	wg.Wait()
}
