package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/semigroup"
	"repro/internal/workload"
)

// The aggregate used across residency tests; registered once per process.
func init() {
	core.RegisterAggregate("test/weight-sum", semigroup.FloatSum(), workload.WeightOf)
}

// residentFixture builds twin trees — fabric and resident — on loopback
// machines over the same points.
type residentFixture struct {
	fab, res   *core.Tree
	fabM, resM *cgm.Machine
	pts        []geom.Point
}

func newResidentFixture(t *testing.T, n, d, p int, seed int64) *residentFixture {
	t.Helper()
	pts := workload.Points(workload.PointSpec{N: n, Dims: d, Dist: workload.Clustered, Seed: seed})
	fabM := cgm.New(cgm.Config{P: p})
	resM := cgm.New(cgm.Config{P: p, Resident: true})
	fx := &residentFixture{
		fab:  core.Build(fabM, pts),
		res:  core.Build(resM, pts),
		fabM: fabM,
		resM: resM,
		pts:  pts,
	}
	return fx
}

func assertSameMetrics(t *testing.T, phase string, a, b cgm.Metrics) {
	t.Helper()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: fabric folded %d rounds, resident %d", phase, len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		x, y := a.Rounds[i], b.Rounds[i]
		if x.Label != y.Label || x.MaxH != y.MaxH || x.TotalElems != y.TotalElems || x.Final != y.Final {
			t.Fatalf("%s round %d diverges:\n  fabric   {%s h=%d vol=%d}\n  resident {%s h=%d vol=%d}",
				phase, i, x.Label, x.MaxH, x.TotalElems, y.Label, y.MaxH, y.TotalElems)
		}
	}
}

// TestResidentEquivalenceLoopback: the registered resident programs must
// produce identical answers AND identical round/h/volume metrics to the
// fabric pipeline, for construction and all result modes, across widths,
// dimensionalities and both balance granularities.
func TestResidentEquivalenceLoopback(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, d := range []int{2, 3} {
			t.Run(fmt.Sprintf("p=%d/d=%d", p, d), func(t *testing.T) {
				n, m := 400, 40
				fx := newResidentFixture(t, n, d, p, 7)
				if err := fx.res.Verify(); err != nil {
					t.Fatalf("resident tree fails Verify: %v", err)
				}
				assertSameMetrics(t, "construct", fx.fabM.Metrics(), fx.resM.Metrics())
				fx.fabM.ResetMetrics()
				fx.resM.ResetMetrics()

				boxes := workload.Boxes(workload.QuerySpec{M: m, Dims: d, N: n, Selectivity: 0.08, Seed: 3})

				fc, rc := fx.fab.CountBatch(boxes), fx.res.CountBatch(boxes)
				for i := range fc {
					if fc[i] != rc[i] {
						t.Fatalf("count %d: fabric %d resident %d", i, fc[i], rc[i])
					}
				}

				fh := core.PrepareAssociativeNamed[float64](fx.fab, "test/weight-sum")
				rh := core.PrepareAssociativeNamed[float64](fx.res, "test/weight-sum")
				fa, ra := fh.Batch(boxes), rh.Batch(boxes)
				for i := range fa {
					if math.Abs(fa[i]-ra[i]) > 1e-9 {
						t.Fatalf("aggregate %d: fabric %v resident %v", i, fa[i], ra[i])
					}
				}

				fr, rr := fx.fab.ReportBatch(boxes), fx.res.ReportBatch(boxes)
				for i := range fr {
					if len(fr[i]) != len(rr[i]) {
						t.Fatalf("report %d: fabric %d pts, resident %d", i, len(fr[i]), len(rr[i]))
					}
					for j := range fr[i] {
						if fr[i][j].ID != rr[i][j].ID {
							t.Fatalf("report %d pt %d: fabric id %d resident id %d", i, j, fr[i][j].ID, rr[i][j].ID)
						}
					}
				}

				assertSameMetrics(t, "search", fx.fabM.Metrics(), fx.resM.Metrics())

				// Mixed batch, both balance granularities.
				for _, bm := range []core.BalanceMode{core.GroupLevel, core.ElementLevel} {
					fx.fab.SetBalanceMode(bm)
					fx.res.SetBalanceMode(bm)
					ops := make([]core.MixedOp, len(boxes))
					for i := range ops {
						ops[i] = core.MixedOp(i % 3)
					}
					fm := core.MixedBatch(fx.fab, fh, ops, boxes)
					rm := core.MixedBatch(fx.res, rh, ops, boxes)
					for i := range fm {
						switch ops[i] {
						case core.OpCount:
							if fm[i].Count != rm[i].Count {
								t.Fatalf("bm=%v mixed count %d: %d vs %d", bm, i, fm[i].Count, rm[i].Count)
							}
						case core.OpAggregate:
							if math.Abs(fm[i].Agg-rm[i].Agg) > 1e-9 {
								t.Fatalf("bm=%v mixed agg %d: %v vs %v", bm, i, fm[i].Agg, rm[i].Agg)
							}
						case core.OpReport:
							if len(fm[i].Pts) != len(rm[i].Pts) {
								t.Fatalf("bm=%v mixed report %d: %d vs %d pts", bm, i, len(fm[i].Pts), len(rm[i].Pts))
							}
						}
					}
				}
			})
		}
	}
}

// TestResidentAllPointsAndStats: the out-of-run resident accessors fetch
// from worker memory and agree with the fabric twin.
func TestResidentAllPointsAndStats(t *testing.T) {
	fx := newResidentFixture(t, 300, 2, 4, 11)
	fp, rp := fx.fab.AllPoints(), fx.res.AllPoints()
	if len(fp) != len(rp) {
		t.Fatalf("AllPoints: fabric %d resident %d", len(fp), len(rp))
	}
	for i := range fp {
		if fp[i].ID != rp[i].ID {
			t.Fatalf("AllPoints order diverges at %d: %d vs %d", i, fp[i].ID, rp[i].ID)
		}
	}
	fn, rn := fx.fab.ForestPartNodes(), fx.res.ForestPartNodes()
	for i := range fn {
		if fn[i] != rn[i] {
			t.Fatalf("ForestPartNodes[%d]: fabric %d resident %d", i, fn[i], rn[i])
		}
	}
	fpts, rpts := fx.fab.ForestPartPoints(), fx.res.ForestPartPoints()
	for i := range fpts {
		if fpts[i] != rpts[i] {
			t.Fatalf("ForestPartPoints[%d]: fabric %d resident %d", i, fpts[i], rpts[i])
		}
	}
}

// TestResidentSingleQueries: the cooperative single-query algorithms work
// against resident parts.
func TestResidentSingleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fx := newResidentFixture(t, 250, 2, 4, 13)
	bf := &brute.Set{Pts: fx.pts}
	rh := core.PrepareAssociativeNamed[float64](fx.res, "test/weight-sum")
	for q := 0; q < 15; q++ {
		lo := []geom.Coord{geom.Coord(rng.Intn(250)), geom.Coord(rng.Intn(250))}
		hi := []geom.Coord{lo[0] + geom.Coord(rng.Intn(120)), lo[1] + geom.Coord(rng.Intn(120))}
		b := geom.NewBox(lo, hi)
		if got, want := fx.res.SingleCount(b), int64(bf.Count(b)); got != want {
			t.Fatalf("SingleCount: got %d want %d", got, want)
		}
		got := brute.IDs(fx.res.SingleReport(b))
		want := brute.IDs(bf.Report(b))
		if len(got) != len(want) {
			t.Fatalf("SingleReport: got %d pts want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("SingleReport id %d: got %d want %d", i, got[i], want[i])
			}
		}
		wantAgg := brute.Aggregate(bf, semigroup.FloatSum(), workload.WeightOf, b)
		if gotAgg := rh.SingleAggregate(b); math.Abs(gotAgg-wantAgg) > 1e-9 {
			t.Fatalf("SingleAggregate: got %v want %v", gotAgg, wantAgg)
		}
	}
}

// TestResidentUnnamedPrepareRefused: an inline monoid cannot serve a
// resident tree; the mistake must fail loudly at preparation time.
func TestResidentUnnamedPrepareRefused(t *testing.T) {
	fx := newResidentFixture(t, 100, 2, 2, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("PrepareAssociative on a resident tree must panic")
		}
	}()
	core.PrepareAssociative(fx.res, semigroup.FloatSum(), workload.WeightOf)
}
