// Package core implements the paper's primary contribution: the
// distributed range tree on a coarse-grained multicomputer (§3–4).
//
// The d-dimensional range tree T over n points is partitioned by the hat
// cut (Definition 3): every node whose canonical point set holds more than
// g = ⌈n/p⌉ points is part of the hat H, replicated on all processors; the
// maximal subtrees below the cut (each a range tree of some dimension
// j ≤ d over at most g points — the forest F) are distributed over the
// processors round-robin in global label order (Construct step 3), so
// every part F_i has size O(s/p) (Theorem 1).
//
// Queries advance through the locally replicated hat without
// communication; the subqueries that must continue into the forest are
// load-balanced by replicating congested forest parts (Algorithm Search),
// and the three result modes of §4.2 — counting, associative function and
// report — finish with a constant number of additional h-relations.
package core

import (
	"fmt"

	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/rangetree"
	"repro/internal/segtree"
)

// ElemID identifies a forest element (one subtree hanging below the hat)
// globally; IDs are dense and assigned in deterministic label order.
type ElemID int32

// ElemInfo is the replicated metadata of one forest element: enough for
// any processor to route queries to it and to account for its size.
type ElemInfo struct {
	ID    ElemID
	Owner int32 // processor storing the element (ID mod p)
	Count int32 // number of points
	Dim   int8  // first dimension the element discriminates (0-based)
	// Key identifies the element's root stub: the PathKey of its segment
	// tree extended by the stub's heap index (Definition 2 / Lemma 1).
	Key segtree.PathKey
	// Min and Max span the element's points in dimension Dim.
	Min, Max geom.Coord
}

// HatNode is one replicated node of the hat. Stub nodes (Elem ≥ 0) are the
// hat's leaves: roots of forest elements. Internal nodes may carry a
// descendant hat tree for the next dimension (Desc ≥ 0).
type HatNode struct {
	Count    int32
	Min, Max geom.Coord
	Elem     ElemID // forest element rooted here, -1 for internal nodes
	Desc     int32  // hat tree id of descendant(v), -1 if none
}

// HatTree is one segment tree of the hat, truncated at the stub cut.
// Nodes maps heap indices to nodes; only nodes covering at least one real
// point appear.
type HatTree struct {
	ID    int32
	Key   segtree.PathKey // names the tree (Lemma 1); primary = RootPathKey
	Dim   int8            // 0-based dimension discriminated
	Shape segtree.Shape
	Nodes map[int]HatNode
}

// element is an owned (or copied) forest element: its points in leaf order
// and the sequential range tree over dimensions Dim..d-1 built from them
// (Construct step 4 builds forest elements sequentially).
type element struct {
	info ElemInfo
	pts  []geom.Point
	tree *rangetree.Tree
}

// procState is one processor's local memory: its replica of the hat, the
// forest part it owns, and (during a search batch) the copies it hosts.
type procState struct {
	rank     int
	hat      []*HatTree
	hatByKey map[segtree.PathKey]int32
	info     []ElemInfo
	elems    map[ElemID]*element
	copies   map[ElemID]*element
}

// lookup resolves an element from the owned part or the current copies.
func (ps *procState) lookup(id ElemID) *element {
	if el, ok := ps.elems[id]; ok {
		return el
	}
	if el, ok := ps.copies[id]; ok {
		return el
	}
	panic(fmt.Sprintf("core: processor %d asked to serve element %d it does not hold", ps.rank, id))
}

// Tree is the distributed range tree handle. All batch operations run SPMD
// programs on the machine the tree was built on.
type Tree struct {
	mach        *cgm.Machine
	n           int
	dims        int
	grain       int
	procs       []*procState
	balanceMode BalanceMode
	lastStats   []SearchStats
	lastDemand  []int
	lastCopied  []int
}

// prepBatch resets the per-batch statistics before a machine run.
func (t *Tree) prepBatch() {
	t.lastStats = make([]SearchStats, t.mach.P())
	t.lastCopied = make([]int, t.mach.P())
}

// LastDemand returns the per-group demand vector |QF_j| of the most recent
// batch — what a no-replication strawman would load each owner with (the
// E6 ablation's baseline).
func (t *Tree) LastDemand() []int { return t.lastDemand }

// N reports the number of points.
func (t *Tree) N() int { return t.n }

// Dims reports the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// P reports the machine width.
func (t *Tree) P() int { return t.mach.P() }

// Grain reports the hat cut g = ⌈n/p⌉.
func (t *Tree) Grain() int { return t.grain }

// Machine returns the underlying machine (for metrics).
func (t *Tree) Machine() *cgm.Machine { return t.mach }

// Info returns the replicated element metadata (processor 0's copy; all
// replicas are identical).
func (t *Tree) Info() []ElemInfo { return t.procs[0].info }

// HatNodeCount reports the number of nodes in one hat replica — the
// quantity Theorem 1(i) bounds by O(p·log^(d-1) p).
func (t *Tree) HatNodeCount() int {
	total := 0
	for _, ht := range t.procs[0].hat {
		total += len(ht.Nodes)
	}
	return total
}

// HatTreeCount reports the number of segment trees in the hat.
func (t *Tree) HatTreeCount() int { return len(t.procs[0].hat) }

// ForestPartNodes reports, per processor, the total node count of the
// owned forest elements — the |F_i| of Theorem 1(ii).
func (t *Tree) ForestPartNodes() []int {
	out := make([]int, t.P())
	for i, ps := range t.procs {
		for _, el := range ps.elems {
			out[i] += el.tree.Nodes()
		}
	}
	return out
}

// ForestPartPoints reports, per processor, the summed point counts of the
// owned elements (points are replicated across dimensions, so this can
// exceed n; it mirrors the leaf mass of F_i).
func (t *Tree) ForestPartPoints() []int {
	out := make([]int, t.P())
	for i, ps := range t.procs {
		for _, el := range ps.elems {
			out[i] += len(el.pts)
		}
	}
	return out
}

// ElemCount reports the number of forest elements.
func (t *Tree) ElemCount() int { return len(t.procs[0].info) }

// AllPoints returns the stored point set in deterministic order. The
// dimension-0 forest elements partition the input, so concatenating them
// in element order recovers it (sorted by the first coordinate).
func (t *Tree) AllPoints() []geom.Point {
	out := make([]geom.Point, 0, t.n)
	for _, info := range t.procs[0].info {
		if info.Dim != 0 {
			continue
		}
		owner := t.procs[info.Owner]
		out = append(out, owner.elems[info.ID].pts...)
	}
	return out
}

// homeOf maps a query id to the processor that initially holds it (block
// distribution over m queries).
func homeOf(qid int32, m, p int) int {
	g := int(qid)
	j := g * p / m
	if j > p-1 {
		j = p - 1
	}
	for j > 0 && g < j*m/p {
		j--
	}
	for j < p-1 && g >= (j+1)*m/p {
		j++
	}
	return j
}

// queryBlock returns the query index interval [lo, hi) processor rank
// starts with.
func queryBlock(rank, m, p int) (int, int) {
	return rank * m / p, (rank + 1) * m / p
}
