// Package core implements the paper's primary contribution: the
// distributed range tree on a coarse-grained multicomputer (§3–4).
//
// The d-dimensional range tree T over n points is partitioned by the hat
// cut (Definition 3): every node whose canonical point set holds more than
// g = ⌈n/p⌉ points is part of the hat H, replicated on all processors; the
// maximal subtrees below the cut (each a range tree of some dimension
// j ≤ d over at most g points — the forest F) are distributed over the
// processors round-robin in global label order (Construct step 3), so
// every part F_i has size O(s/p) (Theorem 1).
//
// Queries advance through the locally replicated hat without
// communication; the subqueries that must continue into the forest are
// load-balanced by replicating congested forest parts (Algorithm Search),
// and the three result modes of §4.2 — counting, associative function and
// report — finish with a constant number of additional h-relations.
package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/segtree"
)

// ElemID identifies a forest element (one subtree hanging below the hat)
// globally; IDs are dense and assigned in deterministic label order.
type ElemID int32

// ElemInfo is the replicated metadata of one forest element: enough for
// any processor to route queries to it and to account for its size.
type ElemInfo struct {
	ID    ElemID
	Owner int32 // processor storing the element (ID mod p)
	Count int32 // number of points
	Dim   int8  // first dimension the element discriminates (0-based)
	// Key identifies the element's root stub: the PathKey of its segment
	// tree extended by the stub's heap index (Definition 2 / Lemma 1).
	Key segtree.PathKey
	// Min and Max span the element's points in dimension Dim.
	Min, Max geom.Coord
}

// HatNode is one replicated node of the hat. Stub nodes (Elem ≥ 0) are the
// hat's leaves: roots of forest elements. Internal nodes may carry a
// descendant hat tree for the next dimension (Desc ≥ 0).
type HatNode struct {
	Count    int32
	Min, Max geom.Coord
	Elem     ElemID // forest element rooted here, -1 for internal nodes
	Desc     int32  // hat tree id of descendant(v), -1 if none
}

// HatTree is one segment tree of the hat, truncated at the stub cut.
// Nodes live in a dense slice indexed by heap index with a presence
// bitmap: every hat node is an ancestor of (or is) a stub, and stubs sit
// within O(log) levels of the root, so the occupied index range is O(p)
// regardless of the shape's full 2·Cap node space — dense probing replaces
// map hashing in the descent's innermost loop.
type HatTree struct {
	ID      int32
	Key     segtree.PathKey // names the tree (Lemma 1); primary = RootPathKey
	Dim     int8            // 0-based dimension discriminated
	Shape   segtree.Shape
	nodes   []HatNode
	present []uint64
}

// newHatTree allocates the dense node store for heap indices [0, limit).
func newHatTree(id int32, key segtree.PathKey, dim int8, shape segtree.Shape, limit int) *HatTree {
	return &HatTree{
		ID: id, Key: key, Dim: dim, Shape: shape,
		nodes:   make([]HatNode, limit),
		present: make([]uint64, (limit+63)/64),
	}
}

// Node returns the hat node at heap index v; ok is false for indices
// below the stub cut or over padding (the map-miss of the old layout).
func (ht *HatTree) Node(v int) (HatNode, bool) {
	if uint(v) >= uint(len(ht.nodes)) || ht.present[v>>6]&(1<<(uint(v)&63)) == 0 {
		return HatNode{}, false
	}
	return ht.nodes[v], true
}

// setNode stores the hat node at heap index v (construction and tests).
func (ht *HatTree) setNode(v int, nd HatNode) {
	ht.nodes[v] = nd
	ht.present[v>>6] |= 1 << (uint(v) & 63)
}

// NodeCount reports the number of present nodes.
func (ht *HatTree) NodeCount() int {
	total := 0
	for _, w := range ht.present {
		total += bits.OnesCount64(w)
	}
	return total
}

// each visits every present node in increasing heap-index order.
func (ht *HatTree) each(visit func(v int, nd HatNode)) {
	for v := range ht.nodes {
		if ht.present[v>>6]&(1<<(uint(v)&63)) != 0 {
			visit(v, ht.nodes[v])
		}
	}
}

// element is an owned (or copied) forest element: its points in leaf order
// and the sequential structure over dimensions Dim..d-1 built from them on
// the tree's backend (Construct step 4 builds forest elements
// sequentially).
type element struct {
	info ElemInfo
	pts  []geom.Point
	tree elemTree
}

// copyCacheCapFor resolves the per-processor copy-cache entry bound:
// an explicit SetCopyCacheCap wins, otherwise a few times this
// processor's fair share of the forest — enough to hold every element a
// balanced skew ships here, while keeping worst-case cache memory within
// a constant factor of the Theorem 1 space bound.
func (t *Tree) copyCacheCapFor(ps *procState) int {
	if cap := t.copyCacheCap.Load(); cap != 0 {
		return int(cap)
	}
	return 4 * (len(ps.info)/t.P() + 1)
}

// hatFrame is one pending node of the iterative hat descent.
type hatFrame struct {
	tree, node int32
}

// procState is one processor's local memory: its replica of the hat, the
// forest part it owns, and (during a search batch) the copies it hosts.
type procState struct {
	rank     int
	hat      []*HatTree
	hatByKey map[segtree.PathKey]int32
	info     []ElemInfo
	elems    map[ElemID]*element
	copies   map[ElemID]*element

	// copyCache keeps copies built in earlier batches so a
	// repeatedly-congested element ships its points but skips the
	// O(g·log^(d-1) g) rebuild. The cache holds current-epoch entries
	// only (installCopies sweeps it whenever the tree epoch moved) and is
	// bounded by Tree.copyCacheCapFor, so a drifting hot set cannot grow
	// it past a constant factor of this processor's forest share.
	copyCache  map[ElemID]*element
	cacheEpoch uint64

	// reused scratch: the explicit stacks of the iterative hat descent
	// and stub expansion, so the per-query hot path allocates nothing.
	// They make the batch-path descents non-reentrant per procState; the
	// single-query wrappers (hatSearchFunc) use local stacks instead so
	// callers outside a machine run never touch this state.
	hatStack  []hatFrame
	stubStack []int32
}

// lookup resolves an element from the owned part or the current copies.
func (ps *procState) lookup(id ElemID) *element {
	if el, ok := ps.elems[id]; ok {
		return el
	}
	if el, ok := ps.copies[id]; ok {
		return el
	}
	panic(fmt.Sprintf("core: processor %d asked to serve element %d it does not hold", ps.rank, id))
}

// Tree is the distributed range tree handle. All batch operations run SPMD
// programs on the machine the tree was built on.
type Tree struct {
	mach *cgm.Machine
	n    int
	dims int
	// resident marks worker-resident execution: the forest elements (and
	// phase-B copies) live in the machine's transport-resident state —
	// worker memory over TCP — and every element access dispatches
	// registered steps (resident.go). The hat replicas, element metadata
	// and batch statistics stay coordinator-side either way.
	resident    bool
	grain       int
	backend     Backend
	procs       []*procState
	balanceMode BalanceMode
	lastStats   []SearchStats
	lastDemand  []int
	// epoch versions the per-processor copy caches; lastCopied is
	// per-rank shipped copy volume. Both are written inside machine runs
	// and readable from any goroutine at any time, hence atomic.
	epoch      atomic.Uint64
	lastCopied []atomic.Int64
	// copyCacheCap overrides the per-processor copy-cache entry bound:
	// 0 = derived default, negative = caching disabled.
	copyCacheCap atomic.Int64
}

// SetCopyCacheCap bounds each processor's cross-batch copy cache to at
// most perProc entries (0 restores the derived default of a few times
// the processor's forest share; negative disables copy caching). Takes
// effect from the next batch.
func (t *Tree) SetCopyCacheCap(perProc int) { t.copyCacheCap.Store(int64(perProc)) }

// prepBatch resets the per-batch statistics before a machine run.
func (t *Tree) prepBatch() {
	t.lastStats = make([]SearchStats, t.mach.P())
	for i := range t.lastCopied {
		t.lastCopied[i].Store(0)
	}
}

// Backend reports the element backend the tree was built with.
func (t *Tree) Backend() Backend { return t.backend }

// Resident reports whether the forest lives in transport-resident state
// (worker memory over TCP) rather than coordinator memory.
func (t *Tree) Resident() bool { return t.resident }

// InvalidateCopies invalidates every processor's cross-batch copy cache.
// A Tree's point set is immutable after Build, so the pipeline never
// needs this for its own correctness (the dynamic layer discards whole
// trees, caches included, rather than mutating one). It exists for
// measurement — forcing cold phase-B installs, as the E15 harness and
// the copy-cache benchmarks do — and as the hook any future in-place
// mutation must call.
func (t *Tree) InvalidateCopies() { t.epoch.Add(1) }

// LastPhaseBInstall reports the total time processors spent installing
// element copies (building or cache-reusing their trees) in the most
// recent batch — the quantity the copy cache attacks.
func (t *Tree) LastPhaseBInstall() time.Duration {
	var total time.Duration
	for _, st := range t.lastStats {
		total += time.Duration(st.InstallNanos)
	}
	return total
}

// LastCopyCacheHits reports how many installed copies were served from
// the cross-batch copy cache in the most recent batch.
func (t *Tree) LastCopyCacheHits() int {
	total := 0
	for _, st := range t.lastStats {
		total += st.CopyCacheHits
	}
	return total
}

// LastDemand returns the per-group demand vector |QF_j| of the most recent
// batch — what a no-replication strawman would load each owner with (the
// E6 ablation's baseline).
func (t *Tree) LastDemand() []int { return t.lastDemand }

// N reports the number of points.
func (t *Tree) N() int { return t.n }

// Dims reports the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// P reports the machine width.
func (t *Tree) P() int { return t.mach.P() }

// Grain reports the hat cut g = ⌈n/p⌉.
func (t *Tree) Grain() int { return t.grain }

// Machine returns the underlying machine (for metrics).
func (t *Tree) Machine() *cgm.Machine { return t.mach }

// SetTrace stamps the tree's machine so its next batch's supersteps —
// coordinator exchanges and worker-side spans alike — land under the
// given trace ID (0 clears). Must not overlap a running batch, the same
// exclusive-run contract the machine itself has.
func (t *Tree) SetTrace(id uint64) { t.mach.SetTrace(id) }

// Info returns the replicated element metadata (processor 0's copy; all
// replicas are identical).
func (t *Tree) Info() []ElemInfo { return t.procs[0].info }

// HatNodeCount reports the number of nodes in one hat replica — the
// quantity Theorem 1(i) bounds by O(p·log^(d-1) p).
func (t *Tree) HatNodeCount() int {
	total := 0
	for _, ht := range t.procs[0].hat {
		total += ht.NodeCount()
	}
	return total
}

// HatTreeCount reports the number of segment trees in the hat.
func (t *Tree) HatTreeCount() int { return len(t.procs[0].hat) }

// ForestPartNodes reports, per processor, the total node count of the
// owned forest elements — the |F_i| of Theorem 1(ii).
func (t *Tree) ForestPartNodes() []int {
	nodes, _ := t.forestPartSizes()
	return nodes
}

// ForestPartPoints reports, per processor, the summed point counts of the
// owned elements (points are replicated across dimensions, so this can
// exceed n; it mirrors the leaf mass of F_i).
func (t *Tree) ForestPartPoints() []int {
	_, pts := t.forestPartSizes()
	return pts
}

// forestPartSizes tallies the owned elements per processor — directly for
// fabric trees, via one stats step per rank for resident ones. Resident
// calls must not overlap a machine run (the Run contract); a failure
// aborts like a machine abort would.
func (t *Tree) forestPartSizes() (nodes, pts []int) {
	p := t.P()
	nodes, pts = make([]int, p), make([]int, p)
	if t.resident {
		for rank := 0; rank < p; rank++ {
			stats, err := cgm.ResidentCall[bool, []elemStat](t.mach, rank, fref("stats/elems"), false)
			if err != nil {
				panic(fmt.Sprintf("core: resident element stats: %v", err))
			}
			for _, st := range stats {
				nodes[rank] += st.Nodes
				pts[rank] += st.Pts
			}
		}
		return nodes, pts
	}
	for i, ps := range t.procs {
		for _, el := range ps.elems {
			nodes[i] += el.tree.Nodes()
			pts[i] += len(el.pts)
		}
	}
	return nodes, pts
}

// ElemCount reports the number of forest elements.
func (t *Tree) ElemCount() int { return len(t.procs[0].info) }

// AllPoints returns the stored point set in deterministic order. The
// dimension-0 forest elements partition the input, so concatenating them
// in element order recovers it (sorted by the first coordinate). On a
// resident tree the points are fetched from the owning ranks (one step
// call per rank); a lost worker panics like a machine abort would.
func (t *Tree) AllPoints() []geom.Point {
	out := make([]geom.Point, 0, t.n)
	if t.resident {
		byOwner := make([][]ElemID, t.P())
		for _, info := range t.procs[0].info {
			if info.Dim == 0 {
				byOwner[info.Owner] = append(byOwner[info.Owner], info.ID)
			}
		}
		fetched := make(map[ElemID][]geom.Point, t.ElemCount())
		for rank, ids := range byOwner {
			parts, err := t.residentElemPoints(rank, ids)
			if err != nil {
				panic(fmt.Sprintf("core: resident point fetch: %v", err))
			}
			for i, id := range ids {
				fetched[id] = parts[i]
			}
		}
		for _, info := range t.procs[0].info {
			if info.Dim == 0 {
				out = append(out, fetched[info.ID]...)
			}
		}
		return out
	}
	for _, info := range t.procs[0].info {
		if info.Dim != 0 {
			continue
		}
		owner := t.procs[info.Owner]
		out = append(out, owner.elems[info.ID].pts...)
	}
	return out
}

// homeOf maps a query id to the processor that initially holds it (block
// distribution over m queries).
func homeOf(qid int32, m, p int) int {
	g := int(qid)
	j := g * p / m
	if j > p-1 {
		j = p - 1
	}
	for j > 0 && g < j*m/p {
		j--
	}
	for j < p-1 && g >= (j+1)*m/p {
		j++
	}
	return j
}

// queryBlock returns the query index interval [lo, hi) processor rank
// starts with.
func queryBlock(rank, m, p int) (int, int) {
	return rank * m / p, (rank + 1) * m / p
}
