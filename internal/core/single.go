package core

import (
	"repro/internal/cgm"
	"repro/internal/comm"
	"repro/internal/geom"
)

// This file addresses the question the paper's conclusion leaves open:
// "the question of using parallelism to speed up just one single query ...
// is also wide open". The batched machinery is useless for m = 1 (its
// balancing needs many queries to spread), but the distributed structure
// itself offers a natural single-query algorithm: every processor advances
// the query through its own hat replica — reaching the identical selection
// set without communication — and then serves exactly the subqueries whose
// forest elements it owns. One gather round combines the partial results.
//
// The achievable speedup is bounded by how many distinct forest elements
// the query touches (at most O(log^d n), and only elements on distinct
// owners parallelize) — which is precisely why the paper calls the general
// problem open. The E13 experiment measures this ownership-limited
// parallelism.

// SingleCount answers one counting query with all processors cooperating.
func (t *Tree) SingleCount(b geom.Box) int64 {
	var result int64
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		var local int64
		var mine []subquery // resident: batched into one serve step
		ps.hatSearchFunc(t, Query{ID: 0, Box: b},
			func(s hatSel) {
				// The hat is replicated: only rank 0 counts hat
				// selections, so each is counted exactly once.
				if pr.Rank() != 0 {
					return
				}
				if s.Elem >= 0 {
					local += int64(ps.info[int(s.Elem)].Count)
				} else {
					nd, _ := ps.hat[s.Tree].Node(int(s.Node))
					local += int64(nd.Count)
				}
			},
			func(s subquery) {
				// Ownership partitions the forest: serve only my own
				// elements, with no copying round at all.
				if int(ps.info[int(s.Elem)].Owner) != pr.Rank() {
					return
				}
				if t.resident {
					mine = append(mine, s)
					return
				}
				local += int64(ps.elems[s.Elem].tree.Count(s.Box))
			})
		if t.resident && len(mine) > 0 {
			for _, v := range cgm.CallResident[serveArgs, []qcount](pr, fref("search/serveCount"), serveArgs{Subs: mine}) {
				local += v.Val
			}
		}
		parts := comm.Gather(pr, "single/count", 0, []int64{local})
		if pr.Rank() == 0 {
			for _, p := range parts {
				result += p[0]
			}
		}
	})
	return result
}

// SingleReport answers one report query with all processors cooperating;
// every processor materializes the points of the elements it owns.
func (t *Tree) SingleReport(b geom.Box) []geom.Point {
	p := t.P()
	perProc := make([][]geom.Point, p)
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		var mine []geom.Point
		var wholeIDs []ElemID // resident: fetched in one step call
		var subs []subquery   // resident: served in one step call
		emitElem := func(id ElemID) {
			if int(ps.info[int(id)].Owner) != pr.Rank() {
				return
			}
			if t.resident {
				wholeIDs = append(wholeIDs, id)
				return
			}
			mine = append(mine, ps.elems[id].pts...)
		}
		ps.hatSearchFunc(t, Query{ID: 0, Box: b},
			func(s hatSel) {
				if s.Elem >= 0 {
					emitElem(s.Elem)
					return
				}
				for _, e := range ps.stubsUnder(s.Tree, int(s.Node), nil) {
					emitElem(e)
				}
			},
			func(s subquery) {
				if int(ps.info[int(s.Elem)].Owner) != pr.Rank() {
					return
				}
				if t.resident {
					subs = append(subs, s)
					return
				}
				mine = append(mine, ps.elems[s.Elem].tree.Report(s.Box)...)
			})
		if t.resident {
			if len(wholeIDs) > 0 {
				for _, pts := range cgm.CallResident[fetchArgs, [][]geom.Point](pr, fref("points/fetch"), fetchArgs{Elems: wholeIDs}) {
					mine = append(mine, pts...)
				}
			}
			if len(subs) > 0 {
				for _, l := range cgm.CallResident[serveArgs, []rlocal](pr, fref("search/serveReport"), serveArgs{Subs: subs}) {
					mine = append(mine, l.Pts...)
				}
			}
		}
		// The partial results stay distributed (the useful deliverable);
		// one barrier closes the superstep accounting.
		cgm.Barrier(pr, "single/report")
		perProc[pr.Rank()] = mine
	})
	var out []geom.Point
	for _, part := range perProc {
		out = append(out, part...)
	}
	return out
}

// SingleAggregate answers one associative-function query cooperatively:
// hat selections are resolved by processor 0 from the prepared annotation,
// forest subqueries by their owners, and one gather round combines.
func (h *AggHandle[T]) SingleAggregate(b geom.Box) T {
	t := h.t
	result := h.m.Identity
	t.mach.Run(func(pr *cgm.Proc) {
		ps := t.procs[pr.Rank()]
		local := h.m.Identity
		var mine []subquery // resident: served through the named aggregate
		ps.hatSearchFunc(t, Query{ID: 0, Box: b},
			func(s hatSel) {
				if pr.Rank() != 0 {
					return
				}
				if s.Elem >= 0 {
					local = h.m.Combine(local, h.elemRoot[int(s.Elem)])
				} else {
					local = h.m.Combine(local, h.hatTab[0][s.Tree][int(s.Node)])
				}
			},
			func(s subquery) {
				if int(ps.info[int(s.Elem)].Owner) != pr.Rank() {
					return
				}
				if t.resident {
					mine = append(mine, s)
					return
				}
				local = h.m.Combine(local, h.elemAggs[pr.Rank()][s.Elem].Query(s.Box))
			})
		if t.resident && len(mine) > 0 {
			for _, v := range cgm.CallResident[serveAggArgs, []qvalT[T]](pr, fref("search/serveAgg"),
				serveAggArgs{Name: h.name, Subs: mine}) {
				local = h.m.Combine(local, v.Val)
			}
		}
		parts := comm.Gather(pr, "single/agg", 0, []T{local})
		if pr.Rank() == 0 {
			for _, p := range parts {
				result = h.m.Combine(result, p[0])
			}
		}
	})
	return result
}

// SingleQueryWork returns, per processor, how many subqueries of the
// single query b each processor would serve — the ownership-limited
// parallelism profile E13 reports.
func (t *Tree) SingleQueryWork(b geom.Box) []int {
	ps := t.procs[0]
	out := make([]int, t.P())
	ps.hatSearchFunc(t, Query{ID: 0, Box: b},
		func(hatSel) {},
		func(s subquery) { out[ps.info[int(s.Elem)].Owner]++ })
	return out
}
