// Package geom provides the geometric primitives shared by every module of
// the range-search library: points in d-dimensional rank space, axis-aligned
// query boxes, and the rank normalization step the paper assumes
// ("all coordinates in each dimension are normalized by replacing each of
// them by their rank in increasing order", §3).
package geom

import "fmt"

// Coord is a single coordinate in rank space. The paper normalizes every
// coordinate to its rank in 1..n, so 32 bits are always enough.
type Coord = int32

// Point is a point of the input set L. ID is the point's stable identity
// (its position in the original input); X holds one rank coordinate per
// dimension.
type Point struct {
	ID int32
	X  []Coord
}

// Dims reports the dimensionality of the point.
func (p Point) Dims() int { return len(p.X) }

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	x := make([]Coord, len(p.X))
	copy(x, p.X)
	return Point{ID: p.ID, X: x}
}

func (p Point) String() string { return fmt.Sprintf("p%d%v", p.ID, p.X) }

// Box is a closed axis-aligned query domain q ⊆ E^d: Lo[i] ≤ x_i ≤ Hi[i]
// for every dimension i. A box with Lo[i] > Hi[i] in any dimension is empty.
type Box struct {
	Lo, Hi []Coord
}

// NewBox builds a box from per-dimension bounds; it panics if the slices
// disagree in length.
func NewBox(lo, hi []Coord) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: box bounds disagree in dimension: %d vs %d", len(lo), len(hi)))
	}
	return Box{Lo: lo, Hi: hi}
}

// Dims reports the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Empty reports whether the box contains no point of rank space.
func (b Box) Empty() bool {
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return true
		}
	}
	return false
}

// Contains reports whether point p lies in the box. It panics if
// dimensionalities disagree.
func (b Box) Contains(p Point) bool {
	if len(p.X) != len(b.Lo) {
		panic(fmt.Sprintf("geom: point dimension %d does not match box dimension %d", len(p.X), len(b.Lo)))
	}
	for i, x := range p.X {
		if x < b.Lo[i] || x > b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsFrom reports whether p satisfies the box constraints for
// dimensions dim..d-1 only (0-based). Search algorithms use it when the
// first dim dimensions have already been resolved structurally.
func (b Box) ContainsFrom(p Point, dim int) bool {
	for i := dim; i < len(b.Lo); i++ {
		if p.X[i] < b.Lo[i] || p.X[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	lo := make([]Coord, len(b.Lo))
	hi := make([]Coord, len(b.Hi))
	copy(lo, b.Lo)
	copy(hi, b.Hi)
	return Box{Lo: lo, Hi: hi}
}

func (b Box) String() string { return fmt.Sprintf("[%v..%v]", b.Lo, b.Hi) }

// Interval is a closed 1-dimensional coordinate interval.
type Interval struct {
	Lo, Hi Coord
}

// Empty reports whether the interval contains no coordinate.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether c lies in the interval.
func (iv Interval) Contains(c Coord) bool { return iv.Lo <= c && c <= iv.Hi }

// ContainsInterval reports whether other ⊆ iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Overlaps reports whether the two intervals share at least one coordinate.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Dim extracts the query interval of box b in dimension dim (0-based).
func (b Box) Dim(dim int) Interval { return Interval{Lo: b.Lo[dim], Hi: b.Hi[dim]} }

// CmpInDim orders points by (X[dim], ID) — a total order even with
// duplicate coordinates. Every structure that sorts points per dimension
// and later splits or merges the presorted orders (the range tree's and
// layered tree's constructions) must agree on this order, so it lives
// here once.
func CmpInDim(a, b Point, dim int) int {
	if a.X[dim] != b.X[dim] {
		if a.X[dim] < b.X[dim] {
			return -1
		}
		return 1
	}
	switch {
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// LessInDim is CmpInDim as a strict order (partition/merge predicate).
func LessInDim(a, b Point, dim int) bool { return CmpInDim(a, b, dim) < 0 }
