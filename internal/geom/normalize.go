package geom

import (
	"fmt"
	"sort"
)

// Normalizer maps raw float64 coordinates into the distinct rank space
// 1..n the trees operate on, and maps raw query boxes into rank boxes. It
// implements the paper's normalization assumption (§3): every coordinate is
// replaced by its rank in increasing order, ties broken by point identity,
// so all ranks in a dimension are distinct.
type Normalizer struct {
	dims int
	// vals[j] holds the raw values of dimension j sorted increasingly;
	// vals[j][r-1] is the raw value of rank r.
	vals [][]float64
}

// NormalizeFloat64 converts raw points (rows of d raw coordinates) into rank
// points and returns the Normalizer that maps raw query boxes into the same
// rank space. Point IDs are assigned 0..n-1 in input order.
func NormalizeFloat64(raw [][]float64) ([]Point, *Normalizer) {
	n := len(raw)
	if n == 0 {
		return nil, &Normalizer{}
	}
	d := len(raw[0])
	for i, row := range raw {
		if len(row) != d {
			panic(fmt.Sprintf("geom: point %d has %d coordinates, want %d", i, len(row), d))
		}
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{ID: int32(i), X: make([]Coord, d)}
	}
	nm := &Normalizer{dims: d, vals: make([][]float64, d)}
	order := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range order {
			order[i] = i
		}
		// Sort by (value, point id) so equal raw values get distinct,
		// deterministic ranks.
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if raw[ia][j] != raw[ib][j] {
				return raw[ia][j] < raw[ib][j]
			}
			return ia < ib
		})
		vj := make([]float64, n)
		for r, i := range order {
			pts[i].X[j] = Coord(r + 1)
			vj[r] = raw[i][j]
		}
		nm.vals[j] = vj
	}
	return pts, nm
}

// Dims reports the dimensionality of the normalized space.
func (nm *Normalizer) Dims() int { return nm.dims }

// N reports the number of points the normalizer was built from.
func (nm *Normalizer) N() int {
	if nm.dims == 0 {
		return 0
	}
	return len(nm.vals[0])
}

// Box maps a raw closed box (lo[j] ≤ x_j ≤ hi[j] over raw values) to the
// equivalent rank-space box: exactly the points whose raw coordinates
// satisfy the raw box satisfy the rank box.
func (nm *Normalizer) Box(lo, hi []float64) Box {
	if len(lo) != nm.dims || len(hi) != nm.dims {
		panic(fmt.Sprintf("geom: query dimension %d/%d does not match normalizer dimension %d", len(lo), len(hi), nm.dims))
	}
	b := Box{Lo: make([]Coord, nm.dims), Hi: make([]Coord, nm.dims)}
	for j := 0; j < nm.dims; j++ {
		v := nm.vals[j]
		// Smallest rank whose raw value ≥ lo[j].
		lor := sort.SearchFloat64s(v, lo[j]) + 1
		// Largest rank whose raw value ≤ hi[j]: first index with value > hi.
		hir := sort.Search(len(v), func(i int) bool { return v[i] > hi[j] })
		b.Lo[j] = Coord(lor)
		b.Hi[j] = Coord(hir)
	}
	return b
}

// Raw returns the raw value behind rank r (1-based) in dimension j.
func (nm *Normalizer) Raw(j int, r Coord) float64 {
	return nm.vals[j][int(r)-1]
}

// RankPoints builds rank-space points directly from integer coordinate rows
// without keeping a normalizer; duplicates are allowed (callers that need
// the paper's distinct-rank precondition should use NormalizeFloat64 or
// RankNormalize). IDs are assigned in input order.
func RankPoints(rows [][]Coord) []Point {
	pts := make([]Point, len(rows))
	for i, row := range rows {
		x := make([]Coord, len(row))
		copy(x, row)
		pts[i] = Point{ID: int32(i), X: x}
	}
	return pts
}

// RankNormalize rewrites the coordinates of pts in place so that every
// dimension holds the distinct ranks 1..n (ties broken by point ID), and
// returns pts. It is the integer-input counterpart of NormalizeFloat64.
func RankNormalize(pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return pts
	}
	d := pts[0].Dims()
	order := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if pts[ia].X[j] != pts[ib].X[j] {
				return pts[ia].X[j] < pts[ib].X[j]
			}
			return pts[ia].ID < pts[ib].ID
		})
		for r, i := range order {
			pts[i].X[j] = Coord(r + 1)
		}
	}
	return pts
}
