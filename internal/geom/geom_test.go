package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxContains(t *testing.T) {
	b := NewBox([]Coord{1, 2}, []Coord{4, 6})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, []Coord{1, 2}}, true},
		{Point{1, []Coord{4, 6}}, true},
		{Point{2, []Coord{2, 4}}, true},
		{Point{3, []Coord{0, 4}}, false},
		{Point{4, []Coord{5, 4}}, false},
		{Point{5, []Coord{2, 1}}, false},
		{Point{6, []Coord{2, 7}}, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBoxEmpty(t *testing.T) {
	if NewBox([]Coord{1}, []Coord{0}).Empty() != true {
		t.Error("inverted box should be empty")
	}
	if NewBox([]Coord{1}, []Coord{1}).Empty() {
		t.Error("degenerate box should not be empty")
	}
}

func TestBoxDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewBox([]Coord{1, 2}, []Coord{3, 4}).Contains(Point{0, []Coord{1}})
}

func TestContainsFrom(t *testing.T) {
	b := NewBox([]Coord{1, 2, 3}, []Coord{4, 5, 6})
	p := Point{0, []Coord{99, 3, 4}} // violates dim 0 only
	if b.Contains(p) {
		t.Error("Contains should fail on dim 0")
	}
	if !b.ContainsFrom(p, 1) {
		t.Error("ContainsFrom(1) should ignore dim 0")
	}
	if !b.ContainsFrom(p, 3) {
		t.Error("ContainsFrom(d) is vacuously true")
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{2, 5}
	if !a.Contains(2) || !a.Contains(5) || a.Contains(6) || a.Contains(1) {
		t.Error("Contains wrong on closed endpoints")
	}
	if !a.ContainsInterval(Interval{3, 4}) || a.ContainsInterval(Interval{1, 4}) {
		t.Error("ContainsInterval wrong")
	}
	if !a.Overlaps(Interval{5, 9}) || a.Overlaps(Interval{6, 9}) {
		t.Error("Overlaps wrong at boundary")
	}
	if !(Interval{3, 2}).Empty() {
		t.Error("inverted interval should be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{7, []Coord{1, 2}}
	q := p.Clone()
	q.X[0] = 99
	if p.X[0] != 1 {
		t.Error("Clone should not share coordinate storage")
	}
	b := NewBox([]Coord{1}, []Coord{2})
	c := b.Clone()
	c.Lo[0] = 50
	if b.Lo[0] != 1 {
		t.Error("Box Clone should not share storage")
	}
}

func TestNormalizeFloat64Ranks(t *testing.T) {
	raw := [][]float64{{3.5, 1.0}, {1.5, 1.0}, {2.5, 9.0}, {1.5, -4.0}}
	pts, _ := NormalizeFloat64(raw)
	// Dimension 0 sorted: 1.5(id1), 1.5(id3)... ties broken by id: id1 then id3.
	wantX0 := map[int32]Coord{0: 4, 1: 1, 2: 3, 3: 2}
	for _, p := range pts {
		if p.X[0] != wantX0[p.ID] {
			t.Errorf("point %d dim0 rank = %d, want %d", p.ID, p.X[0], wantX0[p.ID])
		}
	}
	// Ranks must be a permutation of 1..n in every dimension.
	for j := 0; j < 2; j++ {
		seen := map[Coord]bool{}
		for _, p := range pts {
			if p.X[j] < 1 || p.X[j] > 4 || seen[p.X[j]] {
				t.Fatalf("dim %d ranks not a permutation: %v", j, pts)
			}
			seen[p.X[j]] = true
		}
	}
}

func TestNormalizerBoxEquivalence(t *testing.T) {
	// A raw box and its rank image must select exactly the same points.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n, d := 40, 3
		raw := make([][]float64, n)
		for i := range raw {
			raw[i] = make([]float64, d)
			for j := range raw[i] {
				raw[i][j] = float64(rng.Intn(12)) // many duplicate values on purpose
			}
		}
		pts, nm := NormalizeFloat64(raw)
		lo, hi := make([]float64, d), make([]float64, d)
		for j := 0; j < d; j++ {
			a, b := float64(rng.Intn(14)-1), float64(rng.Intn(14)-1)
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		rb := nm.Box(lo, hi)
		for i, p := range pts {
			inRaw := true
			for j := 0; j < d; j++ {
				if raw[i][j] < lo[j] || raw[i][j] > hi[j] {
					inRaw = false
				}
			}
			if got := rb.Contains(p); got != inRaw {
				t.Fatalf("trial %d point %d: rank box membership %v, raw box %v", trial, i, got, inRaw)
			}
		}
	}
}

func TestNormalizerRawRoundTrip(t *testing.T) {
	raw := [][]float64{{10}, {20}, {30}}
	pts, nm := NormalizeFloat64(raw)
	for i, p := range pts {
		if nm.Raw(0, p.X[0]) != raw[i][0] {
			t.Errorf("Raw(rank(%d)) = %v, want %v", i, nm.Raw(0, p.X[0]), raw[i][0])
		}
	}
	if nm.N() != 3 || nm.Dims() != 1 {
		t.Errorf("N/Dims = %d/%d", nm.N(), nm.Dims())
	}
}

func TestRankNormalizeProperty(t *testing.T) {
	// RankNormalize preserves per-dimension order (ties by ID) and
	// produces permutations of 1..n.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		pts := make([]Point, n)
		orig := make([][]Coord, n)
		for i := range pts {
			x := make([]Coord, d)
			for j := range x {
				x[j] = Coord(rng.Intn(10))
			}
			orig[i] = append([]Coord(nil), x...)
			pts[i] = Point{ID: int32(i), X: x}
		}
		RankNormalize(pts)
		for j := 0; j < d; j++ {
			seen := make([]bool, n+1)
			for _, p := range pts {
				if p.X[j] < 1 || p.X[j] > Coord(n) || seen[p.X[j]] {
					return false
				}
				seen[p.X[j]] = true
			}
			// Order preservation: rank order must refine value order.
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if orig[a][j] < orig[b][j] && pts[a].X[j] > pts[b].X[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeEmpty(t *testing.T) {
	pts, nm := NormalizeFloat64(nil)
	if len(pts) != 0 || nm.N() != 0 {
		t.Error("empty input should produce empty output")
	}
}

func TestRankPoints(t *testing.T) {
	rows := [][]Coord{{5, 6}, {7, 8}}
	pts := RankPoints(rows)
	if len(pts) != 2 || pts[1].ID != 1 || pts[1].X[1] != 8 {
		t.Fatalf("RankPoints wrong: %v", pts)
	}
	rows[0][0] = 99
	if pts[0].X[0] != 5 {
		t.Error("RankPoints must copy coordinates")
	}
}
