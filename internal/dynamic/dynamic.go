// Package dynamic addresses the first open issue in the paper's
// conclusion: "the range tree is inherently static; a dynamic distributed
// data structure would be more powerful, although more difficult to
// implement". It dynamizes the distributed range tree with the classical
// logarithmic method for decomposable searching problems (Bentley [4] in
// the paper's references): the point set is kept as O(log n) static
// distributed range trees of geometrically growing sizes; batch insertion
// rebuilds one level (amortized O(log n) rebuild mass per point), and
// because range search is decomposable, a query batch fans over the levels
// and combines.
//
// Deletions use the standard subtraction trick: deleted points live in a
// shadow structure; counts subtract, reports filter. The price of
// dynamization is visible and measured (E12): a batch now costs O(log n)
// times the constant rounds of the static structure.
package dynamic

import (
	"fmt"

	"repro/internal/cgm"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

// Tree is a dynamized distributed range tree.
type Tree struct {
	mach *cgm.Machine
	dims int
	// base is the smallest level capacity; pending points below base are
	// scanned directly.
	base int
	// levels[i] is nil or a static distributed tree over base·2^i points.
	levels  []*core.Tree
	pending []geom.Point

	// deletion shadow (same representation, nil until first delete)
	deleted *Tree
	shadow  bool // true for the shadow itself (no second-order shadow)

	n        int // live points (inserted − deleted)
	shadowN  int // points in the deletion shadow
	rebuilt  int // total points passed through core.Build (amortization metric)
	rebuilds int // full shadow-folding rebuilds (explicit or automatic)
}

// Option configures the dynamic tree.
type Option func(*Tree)

// WithBase sets the smallest level capacity (default 4·p).
func WithBase(b int) Option {
	return func(t *Tree) {
		if b < 1 {
			panic("dynamic: base must be ≥ 1")
		}
		t.base = b
	}
}

// New creates an empty dynamic tree for d-dimensional points on mach.
func New(mach *cgm.Machine, dims int, opts ...Option) *Tree {
	if dims < 1 {
		panic("dynamic: need at least one dimension")
	}
	t := &Tree{mach: mach, dims: dims, base: 4 * mach.P()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// N reports the number of live points.
func (t *Tree) N() int { return t.n }

// Levels reports how many static levels are currently occupied.
func (t *Tree) Levels() int {
	c := 0
	for _, l := range t.levels {
		if l != nil {
			c++
		}
	}
	return c
}

// RebuiltPoints reports the cumulative number of points passed through
// Algorithm Construct — the amortized-rebuild mass E12 tracks.
func (t *Tree) RebuiltPoints() int { return t.rebuilt }

// ShadowN reports the number of points in the deletion shadow — the
// per-query subtraction tax outstanding right now.
func (t *Tree) ShadowN() int { return t.shadowN }

// Rebuilt reports how many full shadow-folding rebuilds have run
// (explicit Rebuild calls plus the automatic ≥25% compactions) — with
// ShadowN, the amortization pair E12/E16 chart.
func (t *Tree) Rebuilt() int { return t.rebuilds }

// InsertBatch adds points. Points must have the tree's dimensionality;
// IDs should be unique across the lifetime of the structure (they
// disambiguate duplicate coordinates and deletions).
func (t *Tree) InsertBatch(pts []geom.Point) {
	for _, p := range pts {
		if p.Dims() != t.dims {
			panic(fmt.Sprintf("dynamic: point %d has %d dims, want %d", p.ID, p.Dims(), t.dims))
		}
	}
	t.pending = append(t.pending, pts...)
	if !t.shadow {
		t.n += len(pts)
	}
	for len(t.pending) >= t.base {
		block := t.pending[:t.base]
		t.pending = t.pending[t.base:]
		t.carry(block)
	}
}

// carry merges a base-sized block with the full low levels into the first
// empty level — the binary-counter increment of the logarithmic method.
func (t *Tree) carry(block []geom.Point) {
	acc := append([]geom.Point(nil), block...)
	level := 0
	for ; level < len(t.levels) && t.levels[level] != nil; level++ {
		acc = append(acc, collectPoints(t.levels[level])...)
		// Dynamic updates never mutate a level in place: the level is
		// discarded whole (its phase-B copy caches die with it) and the
		// merged rebuild below is a fresh core.Tree with cold caches, so
		// no explicit cache invalidation is needed for correctness.
		t.levels[level] = nil
	}
	for len(t.levels) <= level {
		t.levels = append(t.levels, nil)
	}
	t.rebuilt += len(acc)
	t.levels[level] = core.Build(t.mach, acc)
}

// collectPoints extracts the live points of a static level (the
// dimension-0 forest elements partition them).
func collectPoints(st *core.Tree) []geom.Point {
	return st.AllPoints()
}

// DeleteBatch removes points (matched by ID and coordinates). Deleted
// points accumulate in a shadow structure; counts subtract and reports
// filter. Once the shadow reaches a quarter of the live set the tree
// compacts itself (Rebuild), folding the shadow away — so deletions can
// tax every query by at most a constant factor instead of forever.
func (t *Tree) DeleteBatch(pts []geom.Point) {
	if t.shadow {
		panic("dynamic: shadow trees do not support deletion")
	}
	if len(pts) == 0 {
		return
	}
	if t.deleted == nil {
		t.deleted = New(t.mach, t.dims, WithBase(t.base))
		t.deleted.shadow = true
	}
	t.deleted.InsertBatch(pts)
	t.n -= len(pts)
	t.shadowN += len(pts)
	if 4*t.shadowN >= t.n {
		t.Rebuild()
	}
}

// Rebuild compacts everything (live minus deleted) into one static level,
// resetting the deletion shadow. DeleteBatch calls it automatically at
// the ≥25% shadow threshold; explicit calls remain available.
func (t *Tree) Rebuild() {
	live := t.liveFilter(t.allRaw())
	t.levels = nil // discarded whole; copy caches die with the levels (see carry)
	t.pending = nil
	t.deleted = nil
	t.shadowN = 0
	t.rebuilds++
	if len(live) > 0 {
		t.rebuilt += len(live)
		t.levels = []*core.Tree{core.Build(t.mach, live)}
	}
	t.n = len(live)
}

// allRaw returns every stored point including deleted ones.
func (t *Tree) allRaw() []geom.Point {
	var out []geom.Point
	for _, l := range t.levels {
		if l != nil {
			out = append(out, collectPoints(l)...)
		}
	}
	out = append(out, t.pending...)
	return out
}

// liveFilter removes deleted points.
func (t *Tree) liveFilter(pts []geom.Point) []geom.Point {
	if t.deleted == nil {
		return pts
	}
	dead := make(map[int32]bool)
	for _, p := range t.deleted.allRaw() {
		dead[p.ID] = true
	}
	var out []geom.Point
	for _, p := range pts {
		if !dead[p.ID] {
			out = append(out, p)
		}
	}
	return out
}

// CountBatch answers |R(q)| for every box: the sum over levels and the
// pending buffer, minus the deleted shadow.
func (t *Tree) CountBatch(boxes []geom.Box) []int64 {
	out := make([]int64, len(boxes))
	if len(boxes) == 0 {
		return out
	}
	for _, l := range t.levels {
		if l == nil {
			continue
		}
		for i, c := range l.CountBatch(boxes) {
			out[i] += c
		}
	}
	for i, b := range boxes {
		for _, p := range t.pending {
			if b.Contains(p) {
				out[i]++
			}
		}
	}
	if t.deleted != nil {
		for i, c := range t.deleted.CountBatch(boxes) {
			out[i] -= c
		}
	}
	return out
}

// ReportBatch returns the live points of every box.
func (t *Tree) ReportBatch(boxes []geom.Box) [][]geom.Point {
	out := make([][]geom.Point, len(boxes))
	if len(boxes) == 0 {
		return out
	}
	for _, l := range t.levels {
		if l == nil {
			continue
		}
		for i, pts := range l.ReportBatch(boxes) {
			out[i] = append(out[i], pts...)
		}
	}
	for i, b := range boxes {
		for _, p := range t.pending {
			if b.Contains(p) {
				out[i] = append(out[i], p)
			}
		}
	}
	for i := range out {
		out[i] = t.liveFilter(out[i])
	}
	return out
}

// AggregateBatch folds val over every box with an invertible monoid
// (group): levels add, the deletion shadow subtracts.
func AggregateBatch[T any](t *Tree, m semigroup.Monoid[T], invert func(T) T, val func(geom.Point) T, boxes []geom.Box) []T {
	out := make([]T, len(boxes))
	for i := range out {
		out[i] = m.Identity
	}
	if len(boxes) == 0 {
		return out
	}
	for _, l := range t.levels {
		if l == nil {
			continue
		}
		h := core.PrepareAssociative(l, m, val)
		for i, v := range h.Batch(boxes) {
			out[i] = m.Combine(out[i], v)
		}
	}
	for i, b := range boxes {
		for _, p := range t.pending {
			if b.Contains(p) {
				out[i] = m.Combine(out[i], val(p))
			}
		}
	}
	if t.deleted != nil {
		for i, v := range AggregateBatch(t.deleted, m, invert, val, boxes) {
			out[i] = m.Combine(out[i], invert(v))
		}
	}
	return out
}
