package dynamic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/cgm"
	"repro/internal/geom"
	"repro/internal/semigroup"
)

func randomPoints(rng *rand.Rand, n, d int, idBase int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := make([]geom.Coord, d)
		for j := range x {
			x[j] = geom.Coord(rng.Intn(4 * (n + 1)))
		}
		pts[i] = geom.Point{ID: idBase + int32(i), X: x}
	}
	return pts
}

func randomBoxes(rng *rand.Rand, q, n, d int) []geom.Box {
	boxes := make([]geom.Box, q)
	for i := range boxes {
		lo := make([]geom.Coord, d)
		hi := make([]geom.Coord, d)
		for j := 0; j < d; j++ {
			a := geom.Coord(rng.Intn(4 * (n + 1)))
			b := geom.Coord(rng.Intn(4 * (n + 1)))
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

func TestInsertThenQueryMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(4)
		mach := cgm.New(cgm.Config{P: p})
		dt := New(mach, d, WithBase(2+rng.Intn(12)))
		var all []geom.Point
		batches := 1 + rng.Intn(5)
		for b := 0; b < batches; b++ {
			pts := randomPoints(rng, rng.Intn(40), d, int32(len(all)))
			dt.InsertBatch(pts)
			all = append(all, pts...)
		}
		if len(all) == 0 {
			return dt.N() == 0
		}
		bf := brute.New(all)
		boxes := randomBoxes(rng, 8, len(all), d)
		counts := dt.CountBatch(boxes)
		reports := dt.ReportBatch(boxes)
		for i, b := range boxes {
			if counts[i] != int64(bf.Count(b)) {
				return false
			}
			if !reflect.DeepEqual(brute.IDs(reports[i]), brute.IDs(bf.Report(b))) {
				return false
			}
		}
		return dt.N() == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeleteBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mach := cgm.New(cgm.Config{P: 4})
	dt := New(mach, 2, WithBase(8))
	pts := randomPoints(rng, 120, 2, 0)
	dt.InsertBatch(pts)
	// Delete every third point.
	var dead []geom.Point
	alive := map[int32]bool{}
	for i, p := range pts {
		if i%3 == 0 {
			dead = append(dead, p)
		} else {
			alive[p.ID] = true
		}
	}
	dt.DeleteBatch(dead)
	if dt.N() != len(pts)-len(dead) {
		t.Fatalf("N = %d, want %d", dt.N(), len(pts)-len(dead))
	}
	var livePts []geom.Point
	for _, p := range pts {
		if alive[p.ID] {
			livePts = append(livePts, p)
		}
	}
	bf := brute.New(livePts)
	boxes := randomBoxes(rng, 15, 120, 2)
	counts := dt.CountBatch(boxes)
	reports := dt.ReportBatch(boxes)
	for i, b := range boxes {
		if counts[i] != int64(bf.Count(b)) {
			t.Fatalf("query %d count %d want %d", i, counts[i], bf.Count(b))
		}
		if !reflect.DeepEqual(brute.IDs(reports[i]), brute.IDs(bf.Report(b))) {
			t.Fatalf("query %d report mismatch", i)
		}
	}
}

func TestRebuildCompacts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mach := cgm.New(cgm.Config{P: 2})
	dt := New(mach, 2, WithBase(4))
	pts := randomPoints(rng, 60, 2, 0)
	dt.InsertBatch(pts)
	dt.DeleteBatch(pts[:30])
	dt.Rebuild()
	if dt.Levels() != 1 {
		t.Errorf("after rebuild: %d levels, want 1", dt.Levels())
	}
	if dt.N() != 30 {
		t.Errorf("after rebuild: N = %d, want 30", dt.N())
	}
	bf := brute.New(pts[30:])
	boxes := randomBoxes(rng, 10, 60, 2)
	counts := dt.CountBatch(boxes)
	for i, b := range boxes {
		if counts[i] != int64(bf.Count(b)) {
			t.Fatalf("post-rebuild query %d wrong", i)
		}
	}
}

func TestShadowAutoCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mach := cgm.New(cgm.Config{P: 2})
	dt := New(mach, 2, WithBase(8))
	pts := randomPoints(rng, 200, 2, 0)
	dt.InsertBatch(pts)
	if dt.ShadowN() != 0 || dt.Rebuilt() != 0 {
		t.Fatalf("fresh tree: shadow %d, rebuilds %d", dt.ShadowN(), dt.Rebuilt())
	}

	// Small deletions stay below the threshold: the shadow persists.
	dt.DeleteBatch(pts[:10])
	if dt.ShadowN() != 10 {
		t.Fatalf("shadow %d after 10 deletes (live %d)", dt.ShadowN(), dt.N())
	}
	if dt.Rebuilt() != 0 {
		t.Fatal("compacted below the 25% threshold")
	}

	// Push past live/4: the fold must trigger and reset the shadow.
	dt.DeleteBatch(pts[10:80])
	if dt.Rebuilt() == 0 {
		t.Fatalf("no automatic rebuild: shadow %d, live %d", dt.ShadowN(), dt.N())
	}
	if dt.ShadowN() != 0 {
		t.Fatalf("shadow %d after automatic fold", dt.ShadowN())
	}
	if dt.N() != 120 {
		t.Fatalf("live %d after deleting 80 of 200", dt.N())
	}

	// Queries remain exact through the fold.
	bf := brute.New(pts[80:])
	boxes := randomBoxes(rng, 12, 200, 2)
	counts := dt.CountBatch(boxes)
	reports := dt.ReportBatch(boxes)
	for i, b := range boxes {
		if counts[i] != int64(bf.Count(b)) {
			t.Fatalf("post-fold count %d: %d vs %d", i, counts[i], bf.Count(b))
		}
		if !reflect.DeepEqual(brute.IDs(reports[i]), brute.IDs(bf.Report(b))) {
			t.Fatalf("post-fold report %d mismatch", i)
		}
	}
}

func TestLevelsAreBinaryCounter(t *testing.T) {
	mach := cgm.New(cgm.Config{P: 2})
	dt := New(mach, 1, WithBase(4))
	// 7 blocks of base size → levels 0,1,2 occupied (binary 111).
	for b := 0; b < 7; b++ {
		dt.InsertBatch(randomPoints(rand.New(rand.NewSource(int64(b))), 4, 1, int32(b*4)))
	}
	if dt.Levels() != 3 {
		t.Errorf("levels = %d, want 3 (binary 111)", dt.Levels())
	}
	if dt.N() != 28 {
		t.Errorf("N = %d", dt.N())
	}
}

func TestAmortizedRebuildMass(t *testing.T) {
	// The logarithmic method rebuilds each point O(log(n/base)) times.
	mach := cgm.New(cgm.Config{P: 2})
	dt := New(mach, 1, WithBase(4))
	total := 256
	rng := rand.New(rand.NewSource(7))
	dt.InsertBatch(randomPoints(rng, total, 1, 0))
	perPoint := float64(dt.RebuiltPoints()) / float64(total)
	if perPoint > 8 { // log2(256/4) = 6
		t.Errorf("amortized rebuild mass %.1f per point, want ≤ ~log(n/base)", perPoint)
	}
}

func TestAggregateBatchWithDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mach := cgm.New(cgm.Config{P: 2})
	dt := New(mach, 2, WithBase(8))
	pts := randomPoints(rng, 80, 2, 0)
	dt.InsertBatch(pts)
	dt.DeleteBatch(pts[:20])
	weight := func(p geom.Point) float64 { return float64(p.ID % 7) }
	boxes := randomBoxes(rng, 10, 80, 2)
	got := AggregateBatch(dt, semigroup.FloatSum(), func(x float64) float64 { return -x }, weight, boxes)
	bf := brute.New(pts[20:])
	for i, b := range boxes {
		want := brute.Aggregate(bf, semigroup.FloatSum(), weight, b)
		if got[i] != want {
			t.Fatalf("aggregate %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	mach := cgm.New(cgm.Config{P: 2})
	dt := New(mach, 2)
	boxes := randomBoxes(rand.New(rand.NewSource(1)), 3, 10, 2)
	for _, c := range dt.CountBatch(boxes) {
		if c != 0 {
			t.Error("empty tree counted something")
		}
	}
	for _, r := range dt.ReportBatch(boxes) {
		if len(r) != 0 {
			t.Error("empty tree reported something")
		}
	}
}

func TestValidation(t *testing.T) {
	mach := cgm.New(cgm.Config{P: 2})
	for name, fn := range map[string]func(){
		"dims":    func() { New(mach, 0) },
		"base":    func() { New(mach, 2, WithBase(0)) },
		"raggedP": func() { New(mach, 2).InsertBatch([]geom.Point{{ID: 0, X: []geom.Coord{1}}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPendingBufferOnly(t *testing.T) {
	// Fewer points than base: everything answered from the pending scan.
	mach := cgm.New(cgm.Config{P: 4})
	dt := New(mach, 2, WithBase(100))
	pts := randomPoints(rand.New(rand.NewSource(11)), 20, 2, 0)
	dt.InsertBatch(pts)
	if dt.Levels() != 0 {
		t.Fatal("no level should exist yet")
	}
	bf := brute.New(pts)
	boxes := randomBoxes(rand.New(rand.NewSource(12)), 10, 20, 2)
	counts := dt.CountBatch(boxes)
	for i, b := range boxes {
		if counts[i] != int64(bf.Count(b)) {
			t.Fatalf("pending-only query %d wrong", i)
		}
	}
}
