package obs

// RegistryDump is a structured, transportable snapshot of a registry —
// the beacon payload of the cluster health plane. Unlike the Prometheus
// text exposition it keeps histograms as full HistSnapshots, so the
// coordinator-side aggregator can Merge families across workers and
// re-derive quantiles instead of parsing text. Sampled (Func) and
// collector-emitted series land in Gauges: by the time a dump crosses
// the wire they are plain numbers.
type RegistryDump struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]HistSnapshot
}

// Dump captures every series in the registry, evaluating Func series and
// running collectors. Safe for concurrent use with all registry methods.
func (r *Registry) Dump() RegistryDump {
	order, counters, gauges, hists, funcs, collectors := r.snapshot()
	d := RegistryDump{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]float64),
		Hists:    make(map[string]HistSnapshot),
	}
	for _, name := range order {
		switch {
		case counters[name] != nil:
			d.Counters[name] = counters[name].Value()
		case gauges[name] != nil:
			d.Gauges[name] = float64(gauges[name].Value())
		case hists[name] != nil:
			d.Hists[name] = hists[name].Snapshot()
		case funcs[name] != nil:
			d.Gauges[name] = funcs[name]()
		}
	}
	for _, fn := range collectors {
		fn(func(name string, value float64) { d.Gauges[name] = value })
	}
	return d
}

// EventSink receives one structured cluster event (worker lifecycle,
// session abort, compaction, checkpoint, ingest begin/end). It is a type
// alias so event producers (cgm, store, transport) can accept a sink
// without importing internal/obs/cluster, where the archive lives.
// Sinks must be safe for concurrent use; rank is the worker rank the
// event concerns, or CoordRank for cluster/coordinator-scoped events.
type EventSink = func(kind string, rank int, detail string)

// Health is the structured /healthz payload. When a health source
// returns one, the admin endpoint maps OK == false to HTTP 503 so
// orchestrators probing the port see degradation (a failed compaction, a
// poisoned machine, a down worker) without parsing the body.
type Health struct {
	OK     bool `json:"ok"`
	Detail any  `json:"detail,omitempty"`
}
