// Package obs is the repository's dependency-free observability kit: a
// typed metrics registry (atomic counters, gauges, and fixed-bucket
// logarithmic histograms with quantile extraction), lightweight per-query
// tracing (trace.go), and a small HTTP admin surface (admin.go) exposing
// the registry in Prometheus text form alongside /healthz, /debug/vars
// and /debug/pprof.
//
// The paper's whole contribution is a cost model — a constant number of
// communication rounds with bounded h — and the repository already
// measures exactly those quantities, but only as post-hoc snapshots
// scattered over unrelated structs (engine.Stats, store.Stats,
// cgm.Metrics, the transports' frame-kind counters). This package gives
// them one live home: every subsystem publishes into an obs.Registry, so
// a running cluster is observable the same way a bench run is.
//
// Naming scheme (DESIGN.md §12): series are `<subsystem>_<name>[_<unit>]`
// with Prometheus-style inline labels — e.g.
// `engine_query_latency_ns{mode="count"}` — monotone series end in
// `_total`, durations are recorded in nanoseconds with an `_ns` suffix.
// Handles are get-or-create by full name, so any holder of the registry
// (a CLI stats ticker, a test) reaches the same histogram the engine
// records into.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing series.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every histogram: power-of-two
// upper bounds 1, 2, 4, …, 2^46 (~20h in nanoseconds), plus the last
// bucket absorbing everything larger. Fixed buckets keep Observe a single
// atomic add and make concurrent snapshots tear-free per bucket.
const histBuckets = 48

// Histogram is a log-bucketed distribution: bucket i counts observations
// v with 2^(i-1) ≤ v < 2^i (bucket 0 counts v < 1, the last bucket is
// unbounded). It serves both durations (nanoseconds) and discrete sizes
// (batch occupancies) — only the recorded unit differs.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

func bucketOf(v int64) int {
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketBound is bucket i's exclusive upper bound.
func bucketBound(i int) int64 {
	if i >= 63 {
		return int64(1) << 62
	}
	return int64(1) << uint(i)
}

// HistSnapshot is one tear-free-per-bucket view of a histogram. Count is
// derived from the bucket reads themselves, so Count == Σ buckets holds
// for every snapshot even while observations race; Sum is read separately
// and may run slightly ahead of the buckets under concurrency.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		b := h.buckets[i].Load()
		s.Buckets[i] = b
		s.Count += b
	}
	s.Sum = h.sum.Load()
	return s
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.Snapshot().Count }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from a snapshot: the
// midpoint of the bucket holding the q-th observation. The estimate is
// within a factor of 2 of the true value — the resolution the log buckets
// buy — which is plenty for p50/p95/p99 latency series.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Merge returns the combination of two snapshots — the histogram that
// would result from both observation streams. Used to answer quantiles
// across a labeled family (e.g. latency over all query modes).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return s
}

// Quantile estimates the q-quantile of the snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count-1))
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum > rank {
			hi := bucketBound(i)
			lo := int64(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			return float64(lo+hi) / 2
		}
	}
	return float64(bucketBound(histBuckets - 1))
}

// Emit is the callback a collector reports dynamic series through: the
// value appears in the exposition as a gauge named name (inline labels
// allowed, same syntax as registry handles). It is an alias so packages
// that must not import obs can still offer a compatible emitter (e.g.
// reg.Collect(wire.EmitStats)).
type Emit = func(name string, value float64)

// Registry holds a process-component's metrics. Handles are get-or-create
// by full series name; all methods are safe for concurrent use, including
// concurrently with WriteProm scrapes.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	funcs      map[string]func() float64
	collectors []func(Emit)
	order      []string // registration order of all named series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.order = append(r.order, name)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.order = append(r.order, name)
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.order = append(r.order, name)
	}
	return h
}

// Func registers a sampled series: fn is evaluated at every scrape and
// exposed as a gauge. Registering a name twice replaces the function.
func (r *Registry) Func(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; !ok {
		r.order = append(r.order, name)
	}
	r.funcs[name] = fn
}

// Collect registers a collector: a callback run at every scrape that may
// emit any number of dynamically named series (per-frame-kind wire
// counters, codec totals — series whose label sets are not known up
// front).
func (r *Registry) Collect(fn func(Emit)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// snapshotLocked returns stable slices of the registry contents so the
// exposition can run without holding the lock across metric reads.
func (r *Registry) snapshot() (order []string, counters map[string]*Counter, gauges map[string]*Gauge, hists map[string]*Histogram, funcs map[string]func() float64, collectors []func(Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	order = append([]string(nil), r.order...)
	counters = make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges = make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists = make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs = make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	collectors = append(make([]func(Emit), 0, len(r.collectors)), r.collectors...)
	return
}

// splitName separates a series name into its base and inline label list:
// `engine_query_latency_ns{mode="count"}` → base
// `engine_query_latency_ns`, labels `mode="count"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders a label set with an optional extra label appended.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4). Histograms expose cumulative `_bucket{le=…}` series
// plus `_sum` and `_count`; sampled and collected series expose as
// gauges. Series sharing a base name are grouped under one TYPE comment.
func (r *Registry) WriteProm(w io.Writer) error {
	order, counters, gauges, hists, funcs, collectors := r.snapshot()

	typed := make(map[string]bool)
	typeLine := func(base, typ string) string {
		if typed[base] {
			return ""
		}
		typed[base] = true
		return fmt.Sprintf("# TYPE %s %s\n", base, typ)
	}

	var b strings.Builder
	for _, name := range order {
		base, labels := splitName(name)
		switch {
		case counters[name] != nil:
			b.WriteString(typeLine(base, "counter"))
			fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), counters[name].Value())
		case gauges[name] != nil:
			b.WriteString(typeLine(base, "gauge"))
			fmt.Fprintf(&b, "%s%s %d\n", base, joinLabels(labels, ""), gauges[name].Value())
		case hists[name] != nil:
			b.WriteString(typeLine(base, "histogram"))
			writeHistProm(&b, base, labels, hists[name].Snapshot())
		case funcs[name] != nil:
			b.WriteString(typeLine(base, "gauge"))
			fmt.Fprintf(&b, "%s%s %g\n", base, joinLabels(labels, ""), funcs[name]())
		}
	}

	// Collected series render after the static ones, sorted for a stable
	// exposition (collector emission order is the collector's business).
	var lines []string
	emit := func(name string, value float64) {
		base, labels := splitName(name)
		lines = append(lines, fmt.Sprintf("%s%s %g\n", base, joinLabels(labels, ""), value))
	}
	for _, fn := range collectors {
		fn(emit)
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistProm renders one histogram snapshot in the exposition format:
// cumulative `_bucket{le=…}` series for occupied buckets plus +Inf, then
// `_sum` and `_count`.
func writeHistProm(b *strings.Builder, base, labels string, s HistSnapshot) {
	var cum int64
	for i, cnt := range s.Buckets {
		cum += cnt
		if cnt == 0 && i < histBuckets-1 {
			continue // keep the exposition compact: only occupied buckets plus +Inf
		}
		if i == histBuckets-1 {
			break
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", base, joinLabels(labels, fmt.Sprintf("le=%q", fmt.Sprint(bucketBound(i)))), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", base, joinLabels(labels, ""), s.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", base, joinLabels(labels, ""), s.Count)
}

// WriteProm renders the snapshot as a Prometheus histogram family under
// name (inline labels allowed) — the aggregator's path for exposing
// merged cross-worker families without re-registering them.
func (s HistSnapshot) WriteProm(w io.Writer, name string) error {
	base, labels := splitName(name)
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
	writeHistProm(&b, base, labels, s)
	_, err := io.WriteString(w, b.String())
	return err
}

// SplitName separates a series name into base and inline label list:
// `engine_query_latency_ns{mode="count"}` → `engine_query_latency_ns`,
// `mode="count"`. Exported for the cluster aggregator's relabeling.
func SplitName(name string) (base, labels string) { return splitName(name) }

// JoinLabels re-attaches a label list with an optional extra label —
// SplitName's inverse, used to inject `rank="i"` into worker series.
func JoinLabels(labels, extra string) string { return joinLabels(labels, extra) }
