// Package cluster is the coordinator-side health plane: it turns the p+1
// per-process observability islands of PR 8 into one cluster view. The
// pieces are
//
//   - Beacon: the compact health payload a worker pushes every interval
//     on a dedicated beacon stream (transport owns the wire; this package
//     owns the payload and its consumers),
//   - Monitor: the per-worker liveness state machine
//     (healthy → suspect → down) fed by beacons and connection losses,
//   - EventLog: a size-capped JSONL archive of structured cluster events
//     so post-mortems survive the coordinator process,
//   - Aggregator: merges worker registry dumps into cluster-level
//     families served from /cluster/metrics, /cluster/healthz,
//     /cluster/events and /cluster/top,
//   - rangetop (top.go): the terminal renderer over the aggregator API.
//
// The package deliberately imports only internal/obs and the standard
// library: transport imports it for the Beacon frame payload, so any
// transport dependency here would cycle.
package cluster

import (
	"time"

	"repro/internal/obs"
)

// DefaultInterval is the beacon period when the subscriber does not ask
// for another one: one beacon per second, the granularity the liveness
// timeouts (suspect after 2 missed, down after 3) are quoted in.
const DefaultInterval = time.Second

// Beacon is one worker health sample. Workers push one per interval on
// the beacon stream; the Dump carries the worker's full metrics registry
// (sessions, feed backlog, exec-step latencies, frame counters) so the
// coordinator aggregates real series instead of a hand-picked subset.
type Beacon struct {
	Seq        uint64 // per-subscription sequence number, from 1
	Addr       string // the worker's session listener address
	Sessions   int    // live sessions (machines + store levels)
	Goroutines int
	HeapBytes  uint64 // runtime.MemStats.HeapAlloc at sample time
	UptimeNs   int64  // nanoseconds since the worker started serving
	LastStamp  string // most recent superstep stamp served ("" if none)
	Dump       obs.RegistryDump
}
