package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Aggregator merges the coordinator's own registry with the latest
// beacon-carried worker registry dumps into one cluster view, served
// from the coordinator's admin endpoint:
//
//	/cluster/metrics  merged Prometheus exposition: the coordinator
//	                  block verbatim, every worker series relabeled with
//	                  rank="i", the monitor's liveness series, and
//	                  cluster_* families merged across ranks via
//	                  HistSnapshot.Merge
//	/cluster/healthz  obs.Health over the whole cluster (503 when any
//	                  worker is down or the local health source degrades)
//	/cluster/events   recent archive tail as JSON (?n= bounds it)
//	/cluster/top      TopSnap as JSON — the rangetop wire format
//
// Every field is optional: a nil Monitor serves a single-process
// cluster view, a nil Local skips the coordinator block.
type Aggregator struct {
	Mon    *Monitor
	Events *EventLog
	Local  *obs.Registry
	// LocalHealth folds process-local health (the serving store, the
	// machine) into /cluster/healthz; may be nil.
	LocalHealth func() (ok bool, detail any)
}

// mergedFamilies are the worker histogram families re-exposed as one
// cluster-wide histogram each (cluster_<base> = Merge over ranks and
// label sets): superstep latency and exec-step latency. Counter families
// listed in summedFamilies sum into cluster_<base>.
var mergedFamilies = []string{"worker_superstep_ns", "exec_step_ns", "worker_step_ns"}

var summedFamilies = []string{
	"worker_supersteps_total", "worker_frames_total", "worker_feed_calls_total",
	"worker_feed_bytes_total", "worker_ingest_busy_ns_total",
}

// WriteProm writes the merged cluster exposition.
func (a *Aggregator) WriteProm(w io.Writer) error {
	var b strings.Builder

	// Coordinator block first, verbatim: engine/store/cgm/coord series
	// keep their names — they exist once per cluster already. The
	// monitor's collector may have registered the liveness series on
	// this same registry (for plain /metrics scrapes); drop those here,
	// the authoritative copies are emitted below — an exposition must
	// not carry a series twice.
	if a.Local != nil {
		var local strings.Builder
		_ = a.Local.WriteProm(&local)
		for _, line := range strings.SplitAfter(local.String(), "\n") {
			if strings.Contains(line, "cluster_worker_") || strings.Contains(line, "cluster_beacon_age_seconds") {
				continue
			}
			b.WriteString(line)
		}
	}

	rows := a.Mon.Snapshot()
	healthy := 0
	for _, row := range rows {
		if row.State == StateHealthy {
			healthy++
		}
	}
	fmt.Fprintf(&b, "# TYPE cluster_workers gauge\ncluster_workers %d\n", len(rows))
	fmt.Fprintf(&b, "# TYPE cluster_workers_healthy gauge\ncluster_workers_healthy %d\n", healthy)
	for _, row := range rows {
		up := 0
		if row.State == StateHealthy {
			up = 1
		}
		fmt.Fprintf(&b, "cluster_worker_up{rank=\"%d\"} %d\n", row.Rank, up)
		fmt.Fprintf(&b, "cluster_worker_state{rank=\"%d\"} %d\n", row.Rank, int(row.State))
		fmt.Fprintf(&b, "cluster_beacon_age_seconds{rank=\"%d\"} %g\n", row.Rank, row.BeaconAge.Seconds())
	}

	// Per-rank worker series, relabeled. Histograms expose sum/count
	// plus p50/p99 gauges per rank (the latency heatmap); full bucket
	// expositions come from the merged cluster families below.
	merged := make(map[string]obs.HistSnapshot)
	summed := make(map[string]int64)
	var lines []string
	for _, row := range rows {
		if !row.Seen {
			continue
		}
		rank := fmt.Sprintf(`rank="%d"`, row.Rank)
		withRank := func(name string) (base, labels string) {
			base, labels = obs.SplitName(name)
			if !strings.Contains(labels, "rank=") {
				if labels == "" {
					labels = rank
				} else {
					labels += "," + rank
				}
			}
			return base, labels
		}
		for name, v := range row.Beacon.Dump.Counters {
			base, labels := withRank(name)
			lines = append(lines, fmt.Sprintf("%s%s %d\n", base, obs.JoinLabels(labels, ""), v))
			for _, fam := range summedFamilies {
				if base == fam {
					summed["cluster_"+strings.TrimPrefix(base, "worker_")+obs.JoinLabels(stripRank(labels, rank), "")] += v
				}
			}
		}
		for name, v := range row.Beacon.Dump.Gauges {
			base, labels := withRank(name)
			lines = append(lines, fmt.Sprintf("%s%s %g\n", base, obs.JoinLabels(labels, ""), v))
		}
		for name, s := range row.Beacon.Dump.Hists {
			base, labels := withRank(name)
			lines = append(lines,
				fmt.Sprintf("%s_sum%s %d\n", base, obs.JoinLabels(labels, ""), s.Sum),
				fmt.Sprintf("%s_count%s %d\n", base, obs.JoinLabels(labels, ""), s.Count),
				fmt.Sprintf("%s_p50%s %g\n", base, obs.JoinLabels(labels, ""), s.Quantile(0.50)),
				fmt.Sprintf("%s_p99%s %g\n", base, obs.JoinLabels(labels, ""), s.Quantile(0.99)),
			)
			for _, fam := range mergedFamilies {
				if base == fam {
					merged["cluster_"+strings.TrimPrefix(base, "worker_")] =
						merged["cluster_"+strings.TrimPrefix(base, "worker_")].Merge(s)
				}
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}

	// Cluster-merged families: full bucket expositions so dashboards see
	// the cluster-wide distribution the paper's Theorem 2/3 bounds talk
	// about, not p disjoint ones.
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		_ = merged[name].WriteProm(&b, name)
	}
	sums := make([]string, 0, len(summed))
	for name := range summed {
		sums = append(sums, name)
	}
	sort.Strings(sums)
	for _, name := range sums {
		fmt.Fprintf(&b, "%s %d\n", name, summed[name])
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// stripRank removes the injected rank label so per-rank label sets merge
// into one cluster series (worker_feed_calls_total{rank="2"} sums into
// cluster_feed_calls_total).
func stripRank(labels, rank string) string {
	switch {
	case labels == rank:
		return ""
	case strings.HasSuffix(labels, ","+rank):
		return strings.TrimSuffix(labels, ","+rank)
	case strings.HasPrefix(labels, rank+","):
		return strings.TrimPrefix(labels, rank+",")
	default:
		return labels
	}
}

// Health builds the /cluster/healthz payload: OK iff no worker is down
// or suspect and the local health source (store, machine) agrees.
func (a *Aggregator) Health() obs.Health {
	ok := true
	detail := map[string]any{}
	if a.Mon != nil {
		rows := a.Mon.Snapshot()
		workers := make([]map[string]any, len(rows))
		for i, row := range rows {
			workers[i] = map[string]any{
				"rank":          row.Rank,
				"addr":          row.Addr,
				"state":         row.State.String(),
				"beacon_age_ms": row.BeaconAge.Milliseconds(),
			}
			if row.LastErr != "" {
				workers[i]["err"] = row.LastErr
			}
			if row.State != StateHealthy {
				ok = false
			}
		}
		detail["p"] = len(rows)
		detail["workers"] = workers
	}
	if a.LocalHealth != nil {
		lok, ldet := a.LocalHealth()
		ok = ok && lok
		detail["coordinator"] = ldet
	}
	if a.Events != nil {
		detail["events"] = map[string]any{"archive": a.Events.Path(), "recent": len(a.Events.Recent(eventRingCap))}
		if werr := a.Events.Err(); werr != "" {
			detail["events_write_err"] = werr
		}
	}
	return obs.Health{OK: ok, Detail: detail}
}

// MetricsHandler serves /cluster/metrics.
func (a *Aggregator) MetricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.WriteProm(w)
}

// HealthzHandler serves /cluster/healthz (503 when degraded).
func (a *Aggregator) HealthzHandler(w http.ResponseWriter, _ *http.Request) {
	h := a.Health()
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	if !h.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write(append(b, '\n'))
}

// EventsHandler serves /cluster/events: the archive tail as a JSON
// array, newest last; ?n= bounds the count (default 100).
func (a *Aggregator) EventsHandler(w http.ResponseWriter, r *http.Request) {
	n := 100
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	evs := a.Events.Recent(n)
	if evs == nil {
		evs = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(evs, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

// TopHandler serves /cluster/top — the rangetop wire format.
func (a *Aggregator) TopHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(a.Top())
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

// Mount attaches all four endpoints to an admin-style mux.
func (a *Aggregator) Mount(h interface {
	Handle(pattern string, fn http.HandlerFunc)
}) {
	h.Handle("/cluster/metrics", a.MetricsHandler)
	h.Handle("/cluster/healthz", a.HealthzHandler)
	h.Handle("/cluster/events", a.EventsHandler)
	h.Handle("/cluster/top", a.TopHandler)
}

// TopSnap is one rangetop sample: cumulative counters plus quantiles;
// the renderer derives rates by diffing two snaps, which keeps the
// aggregator stateless.
type TopSnap struct {
	UnixNs  int64       `json:"unix_ns"`
	P       int         `json:"p"`
	Workers []TopWorker `json:"workers"`
	Coord   TopCoord    `json:"coord"`
	Events  []Event     `json:"events,omitempty"` // recent tail for the footer
}

// TopWorker is one per-rank row.
type TopWorker struct {
	Rank        int     `json:"rank"`
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	BeaconAgeMs int64   `json:"beacon_age_ms"`
	Sessions    int     `json:"sessions"`
	HeapBytes   uint64  `json:"heap_bytes"`
	Supersteps  int64   `json:"supersteps"`
	StepP50Ns   float64 `json:"step_p50_ns"`
	StepP99Ns   float64 `json:"step_p99_ns"`
	FeedCalls   int64   `json:"feed_calls"`
	FeedBytes   int64   `json:"feed_bytes"`
	LastStamp   string  `json:"last_stamp,omitempty"`
}

// TopCoord is the cluster summary line's source.
type TopCoord struct {
	Submitted    int64   `json:"submitted"`
	CacheHits    int64   `json:"cache_hits"`
	LatP50Ns     float64 `json:"lat_p50_ns"`
	LatP99Ns     float64 `json:"lat_p99_ns"`
	Runs         int64   `json:"runs"`
	Rounds       int64   `json:"rounds"`
	StoreLive    int64   `json:"store_live"`
	StoreLevels  int64   `json:"store_levels"`
	StoreBacklog int64   `json:"store_backlog"`
	Healthy      bool    `json:"healthy"`
}

// Top assembles a TopSnap from the monitor and the local registry.
func (a *Aggregator) Top() TopSnap {
	rows := a.Mon.Snapshot()
	snap := TopSnap{UnixNs: time.Now().UnixNano(), P: len(rows)}
	for _, row := range rows {
		tw := TopWorker{
			Rank:        row.Rank,
			Addr:        row.Addr,
			State:       row.State.String(),
			BeaconAgeMs: row.BeaconAge.Milliseconds(),
			Sessions:    row.Beacon.Sessions,
			HeapBytes:   row.Beacon.HeapBytes,
			LastStamp:   row.Beacon.LastStamp,
		}
		var steps obs.HistSnapshot
		for name, s := range row.Beacon.Dump.Hists {
			if base, _ := obs.SplitName(name); base == "worker_superstep_ns" {
				steps = steps.Merge(s)
			}
		}
		tw.Supersteps = sumCounters(row.Beacon.Dump.Counters, "worker_supersteps_total")
		tw.StepP50Ns = steps.Quantile(0.50)
		tw.StepP99Ns = steps.Quantile(0.99)
		tw.FeedCalls = sumCounters(row.Beacon.Dump.Counters, "worker_feed_calls_total")
		tw.FeedBytes = sumCounters(row.Beacon.Dump.Counters, "worker_feed_bytes_total")
		snap.Workers = append(snap.Workers, tw)
	}
	if a.Local != nil {
		d := a.Local.Dump()
		var lat obs.HistSnapshot
		for name, s := range d.Hists {
			if base, _ := obs.SplitName(name); base == "engine_query_latency_ns" {
				lat = lat.Merge(s)
			}
		}
		snap.Coord = TopCoord{
			Submitted:    sumCounters(d.Counters, "engine_submitted_total"),
			CacheHits:    sumCounters(d.Counters, "engine_cache_hits_total"),
			LatP50Ns:     lat.Quantile(0.50),
			LatP99Ns:     lat.Quantile(0.99),
			Runs:         sumCounters(d.Counters, "cgm_runs_total"),
			Rounds:       sumCounters(d.Counters, "cgm_rounds_total"),
			StoreLive:    int64(d.Gauges["store_live_points"]),
			StoreLevels:  int64(d.Gauges["store_levels"]),
			StoreBacklog: int64(d.Gauges["store_memtable_pending"] + d.Gauges["store_shadow_pending"]),
		}
	}
	snap.Coord.Healthy = a.Health().OK
	if a.Events != nil {
		snap.Events = a.Events.Recent(5)
	}
	return snap
}

// sumCounters sums every series of a family (all label sets).
func sumCounters(counters map[string]int64, base string) int64 {
	var total int64
	for name, v := range counters {
		if b, _ := obs.SplitName(name); b == base {
			total += v
		}
	}
	return total
}
