package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEventLogRingAndFile checks the archive's two faces agree: Recent
// serves the in-memory tail oldest-first, and ReadEvents replays the
// same events from the JSONL file.
func TestEventLogRingAndFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ev, err := OpenEventLog(path, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		ev.Emit("compaction", obs.CoordRank, fmt.Sprintf("pass %d", i))
	}
	ev.Emit("worker_down", 2, "3 beacon intervals silent")
	recent := ev.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) returned %d events", len(recent))
	}
	if recent[2].Kind != "worker_down" || recent[2].Rank != 2 {
		t.Fatalf("newest event = %+v, want the worker_down", recent[2])
	}
	if recent[0].Detail != "pass 3" {
		t.Fatalf("Recent not oldest-first: %+v", recent)
	}
	if err := ev.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	replay, err := ReadEvents(path)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(replay) != 6 {
		t.Fatalf("file replay has %d events, want 6", len(replay))
	}
	if replay[5].Kind != "worker_down" || replay[5].Detail != "3 beacon intervals silent" {
		t.Fatalf("file tail = %+v", replay[5])
	}
	if replay[0].T.IsZero() {
		t.Fatal("timestamps not persisted")
	}
}

// TestEventLogRotation drives the archive past its size cap and checks
// it rotates once to <path>.1 instead of growing without bound.
func TestEventLogRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ev, err := OpenEventLog(path, 512)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 40; i++ {
		ev.Emit("checkpoint", obs.CoordRank, fmt.Sprintf("version %d with some padding detail", i))
	}
	if werr := ev.Err(); werr != "" {
		t.Fatalf("write error: %s", werr)
	}
	ev.Close()
	for _, p := range []string{path, path + ".1"} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if st.Size() > 512+256 {
			t.Errorf("%s is %d bytes, cap was 512", p, st.Size())
		}
		if _, err := ReadEvents(p); err != nil {
			t.Errorf("replay %s: %v", p, err)
		}
	}
	// The ring still holds the full recent tail across rotations.
	recent := ev.Recent(40)
	if len(recent) != 40 {
		t.Fatalf("ring lost events across rotation: %d of 40", len(recent))
	}
	if recent[39].Detail != "version 39 with some padding detail" {
		t.Fatalf("ring tail = %+v", recent[39])
	}
}

// TestEventLogNil checks the no-op contract every producer leans on.
func TestEventLogNil(t *testing.T) {
	var ev *EventLog
	ev.Emit("whatever", 0, "x") // must not panic
	if got := ev.Recent(5); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if ev.Err() != "" || ev.Path() != "" || ev.Close() != nil {
		t.Fatal("nil accessors not zero")
	}
}

// feedBeacon builds a beacon carrying the dump of a scratch registry
// populated by fill.
func feedBeacon(seq uint64, addr string, fill func(r *obs.Registry)) Beacon {
	r := obs.NewRegistry()
	fill(r)
	return Beacon{Seq: seq, Addr: addr, Sessions: 1, Dump: r.Dump()}
}

// TestAggregatorMergesDisjointLabelSets feeds two ranks whose histogram
// and counter families carry disjoint label sets and checks the merged
// cluster families combine them: per-rank series are relabeled with
// rank="i", cluster_* histograms merge across both label sets, and
// summed counters keep their own labels while dropping the rank.
func TestAggregatorMergesDisjointLabelSets(t *testing.T) {
	mon := NewMonitor(MonitorConfig{Addrs: []string{"a:1", "b:2"}, Interval: time.Hour})
	defer mon.Close()
	mon.Feed(0, feedBeacon(1, "a:1", func(r *obs.Registry) {
		h := r.Histogram(`exec_step_ns{kind="call",step="core/points"}`)
		for i := 0; i < 4; i++ {
			h.Observe(100)
		}
		r.Counter(`worker_frames_total{kind="deposit"}`).Add(5)
	}))
	mon.Feed(1, feedBeacon(1, "b:2", func(r *obs.Registry) {
		h := r.Histogram(`exec_step_ns{kind="emit",step="core/search"}`)
		for i := 0; i < 6; i++ {
			h.Observe(1 << 16)
		}
		r.Counter(`worker_frames_total{kind="deposit"}`).Add(7)
		r.Counter(`worker_frames_total{kind="block"}`).Add(3)
	}))

	agg := &Aggregator{Mon: mon}
	var b strings.Builder
	if err := agg.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		// Relabeled per-rank series keep their original labels plus rank.
		`exec_step_ns_count{kind="call",step="core/points",rank="0"} 4`,
		`exec_step_ns_count{kind="emit",step="core/search",rank="1"} 6`,
		`worker_frames_total{kind="deposit",rank="0"} 5`,
		`worker_frames_total{kind="block",rank="1"} 3`,
		// The merged cluster histogram spans both ranks' label sets.
		"cluster_exec_step_ns_count 10",
		fmt.Sprintf("cluster_exec_step_ns_sum %d", 4*100+6*(1<<16)),
		// Summed counters merge ranks but keep their own labels.
		`cluster_frames_total{kind="deposit"} 12`,
		`cluster_frames_total{kind="block"} 3`,
		// Liveness series.
		`cluster_worker_up{rank="0"} 1`,
		`cluster_worker_up{rank="1"} 1`,
		"cluster_workers_healthy 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, `rank="0",rank=`) || strings.Contains(out, `rank="1",rank=`) {
		t.Error("rank label injected twice")
	}
}

// TestAggregatorEmptyMonitor checks a monitor with no beacons yet (and a
// nil monitor) still renders: zero workers healthy, no per-rank dump
// lines, no panic.
func TestAggregatorEmptyMonitor(t *testing.T) {
	mon := NewMonitor(MonitorConfig{Addrs: []string{"a:1"}, Interval: time.Hour})
	defer mon.Close()
	agg := &Aggregator{Mon: mon}
	var b strings.Builder
	if err := agg.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if !strings.Contains(b.String(), "cluster_workers_healthy 0") {
		t.Errorf("unseen worker counted healthy:\n%s", b.String())
	}
	single := &Aggregator{Local: obs.NewRegistry()}
	b.Reset()
	if err := single.WriteProm(&b); err != nil {
		t.Fatalf("nil-monitor WriteProm: %v", err)
	}
	if !strings.Contains(b.String(), "cluster_workers 0") {
		t.Errorf("nil monitor exposition:\n%s", b.String())
	}
	if h := single.Health(); !h.OK {
		t.Errorf("single-process aggregator reports degraded: %+v", h)
	}
}

// TestMonitorStateMachine drives the liveness transitions directly:
// feed → healthy, lost → suspect (with event), silence → down (with
// event), feed again → healthy with worker_recovered.
func TestMonitorStateMachine(t *testing.T) {
	ev, _ := OpenEventLog("", 0)
	const interval = 20 * time.Millisecond
	mon := NewMonitor(MonitorConfig{Addrs: []string{"a:1", "b:2"}, Interval: interval,
		SuspectMissed: 2, DownMissed: 3, Events: ev})
	defer mon.Close()

	if st := mon.StateOf(0); st != StateUnknown {
		t.Fatalf("initial state = %v", st)
	}
	mon.Feed(0, Beacon{Seq: 1, Addr: "a:1"})
	mon.Feed(1, Beacon{Seq: 1, Addr: "b:2"})
	if !mon.AllHealthy() {
		t.Fatal("fed workers not healthy")
	}

	// A broken stream is suspect immediately, not after the timeout.
	mon.Lost(1, fmt.Errorf("connection reset"))
	if st := mon.StateOf(1); st != StateSuspect {
		t.Fatalf("after Lost: state = %v, want suspect", st)
	}

	// Silence ages suspect into down within DownMissed intervals.
	deadline := time.Now().Add(3*interval + 10*interval)
	for mon.StateOf(1) != StateDown {
		if time.Now().After(deadline) {
			t.Fatal("worker never aged to down")
		}
		time.Sleep(interval / 4)
	}
	// Rank 0 keeps beaconing and must stay healthy throughout.
	mon.Feed(0, Beacon{Seq: 2, Addr: "a:1"})
	if st := mon.StateOf(0); st != StateHealthy {
		t.Fatalf("rank 0 state = %v, want healthy", st)
	}

	// A beacon resurrects the rank and archives the recovery.
	mon.Feed(1, Beacon{Seq: 9, Addr: "b:2"})
	if st := mon.StateOf(1); st != StateHealthy {
		t.Fatalf("after recovery beacon: state = %v", st)
	}
	kinds := map[string]int{}
	for _, e := range ev.Recent(32) {
		if e.Rank == 1 {
			kinds[e.Kind]++
		}
	}
	for _, want := range []string{"worker_suspect", "worker_down", "worker_recovered"} {
		if kinds[want] == 0 {
			t.Errorf("missing %s event (got %v)", want, kinds)
		}
	}
}

// TestRenderTop pins the rangetop frame: first frame rates render as
// "-", the second frame derives them from the diff, and a down rank is
// marked DOWN with its beacon loss age.
func TestRenderTop(t *testing.T) {
	mk := func(unixNs int64, steps0 int64) *TopSnap {
		return &TopSnap{
			UnixNs: unixNs, P: 2,
			Workers: []TopWorker{
				{Rank: 1, Addr: "b:2", State: "down", BeaconAgeMs: 412, Sessions: 0},
				{Rank: 0, Addr: "a:1", State: "healthy", BeaconAgeMs: 3, Sessions: 1,
					Supersteps: steps0, HeapBytes: 5 << 20},
			},
			Coord:  TopCoord{Submitted: 100 + steps0, Healthy: false, StoreLive: 42},
			Events: []Event{{T: time.Unix(0, unixNs), Kind: "worker_down", Rank: 1, Detail: "silent"}},
		}
	}
	first := RenderTop(nil, mk(1e9, 50), false)
	if !strings.Contains(first, "rangetop · p=2 · workers 1/2 up · DEGRADED") {
		t.Errorf("header wrong:\n%s", first)
	}
	if !strings.Contains(first, "DOWN") || !strings.Contains(first, "lost 412ms") {
		t.Errorf("down rank not marked:\n%s", first)
	}
	// Rows are ordered by rank even when the snapshot is not.
	if strings.Index(first, "r0") > strings.Index(first, "r1 ") {
		t.Errorf("rows not rank-ordered:\n%s", first)
	}
	if !strings.Contains(first, "- ") {
		t.Errorf("first frame should render rates as '-':\n%s", first)
	}
	if !strings.Contains(first, "worker_down") {
		t.Errorf("event footer missing:\n%s", first)
	}
	second := RenderTop(mk(1e9, 50), mk(2e9, 150), false)
	if !strings.Contains(second, "100.0") { // 100 steps in 1s
		t.Errorf("steps/s not derived from diff:\n%s", second)
	}
	if color := RenderTop(nil, mk(1e9, 50), true); !strings.Contains(color, "\x1b[31mDOWN") {
		t.Errorf("color frame missing red DOWN cell:\n%q", color)
	}
}
