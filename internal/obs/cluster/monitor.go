package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a worker's position in the liveness state machine.
type State int

const (
	// StateUnknown: no beacon received yet (monitor just started or the
	// worker never came up). Counts as not-up in cluster_worker_up.
	StateUnknown State = iota
	// StateHealthy: a beacon arrived within the suspect window.
	StateHealthy
	// StateSuspect: the beacon stream broke or SuspectMissed intervals
	// passed without a beacon. The watcher is redialing; the worker may
	// recover.
	StateSuspect
	// StateDown: DownMissed intervals passed since the last beacon. The
	// detection substrate ROADMAP item 1's failover consumes.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// MonitorConfig configures the liveness state machine.
type MonitorConfig struct {
	// Addrs are the worker session addresses, indexed by rank.
	Addrs []string
	// Interval is the expected beacon period (DefaultInterval when zero).
	Interval time.Duration
	// SuspectMissed and DownMissed are the missed-interval thresholds for
	// the healthy→suspect and →down transitions (defaults 2 and 3).
	SuspectMissed int
	DownMissed    int
	// Events receives worker lifecycle transitions; may be nil.
	Events *EventLog
	// Obs, when set, gains a collector exporting cluster_worker_up{rank}
	// and cluster_worker_state{rank} at every scrape.
	Obs *obs.Registry
}

// WorkerHealth is one row of a monitor snapshot.
type WorkerHealth struct {
	Rank      int
	Addr      string
	State     State
	Seen      bool          // ever received a beacon
	BeaconAge time.Duration // since the last beacon (or monitor start)
	LastErr   string        // most recent stream error, "" when healthy
	Beacon    Beacon        // last received beacon (zero until Seen)
}

// Monitor maintains per-worker liveness. Beacons arrive via Feed, stream
// breaks via Lost (both called by transport's beacon watcher); an
// internal ticker ages workers into suspect/down when beacons stop
// arriving entirely. All methods are safe for concurrent use.
type Monitor struct {
	cfg  MonitorConfig
	mu   sync.Mutex
	ws   []wstate
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

type wstate struct {
	state   State
	seen    bool
	last    time.Time // last beacon (or monitor start while unseen)
	lastErr string
	beacon  Beacon
}

// NewMonitor starts a monitor over cfg.Addrs.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.SuspectMissed <= 0 {
		cfg.SuspectMissed = 2
	}
	if cfg.DownMissed <= cfg.SuspectMissed {
		cfg.DownMissed = cfg.SuspectMissed + 1
	}
	m := &Monitor{
		cfg:  cfg,
		ws:   make([]wstate, len(cfg.Addrs)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	now := time.Now()
	for i := range m.ws {
		m.ws[i].last = now
	}
	if cfg.Obs != nil {
		cfg.Obs.Collect(m.collect)
	}
	go m.run()
	return m
}

// P reports the number of monitored workers. Nil-safe.
func (m *Monitor) P() int {
	if m == nil {
		return 0
	}
	return len(m.cfg.Addrs)
}

// Interval reports the configured beacon period.
func (m *Monitor) Interval() time.Duration { return m.cfg.Interval }

// Feed records a received beacon: the worker is healthy, whatever it
// was before; coming back from suspect/down emits worker_recovered.
func (m *Monitor) Feed(rank int, b Beacon) {
	if m == nil || rank < 0 || rank >= len(m.ws) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &m.ws[rank]
	prev := w.state
	w.state = StateHealthy
	w.seen = true
	w.last = time.Now()
	w.lastErr = ""
	w.beacon = b
	if prev == StateSuspect || prev == StateDown {
		m.cfg.Events.Emit("worker_recovered", rank, fmt.Sprintf("beacon seq %d from %s after %s", b.Seq, b.Addr, prev))
	}
}

// Lost records a broken beacon stream (dial failure, read error): a
// healthy worker turns suspect immediately — faster than waiting out the
// missed-beacon window — and the down timer keeps running from the last
// beacon.
func (m *Monitor) Lost(rank int, err error) {
	if m == nil || rank < 0 || rank >= len(m.ws) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &m.ws[rank]
	if err != nil {
		w.lastErr = err.Error()
	}
	if w.state == StateHealthy {
		w.state = StateSuspect
		m.cfg.Events.Emit("worker_suspect", rank, fmt.Sprintf("beacon stream lost: %v", err))
	}
}

// run ages workers: ticking well under the beacon interval keeps the
// detection latency dominated by the thresholds, not the poll.
func (m *Monitor) run() {
	defer close(m.done)
	period := m.cfg.Interval / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.tick(time.Now())
		case <-m.stop:
			return
		}
	}
}

func (m *Monitor) tick(now time.Time) {
	suspectAfter := time.Duration(m.cfg.SuspectMissed) * m.cfg.Interval
	downAfter := time.Duration(m.cfg.DownMissed) * m.cfg.Interval
	m.mu.Lock()
	defer m.mu.Unlock()
	for rank := range m.ws {
		w := &m.ws[rank]
		age := now.Sub(w.last)
		if w.state == StateHealthy && age > suspectAfter {
			w.state = StateSuspect
			m.cfg.Events.Emit("worker_suspect", rank, fmt.Sprintf("%d beacon intervals silent", m.cfg.SuspectMissed))
		}
		if w.state != StateDown && age > downAfter {
			w.state = StateDown
			detail := fmt.Sprintf("%d beacon intervals silent", m.cfg.DownMissed)
			if !w.seen {
				detail = "no beacon ever received"
			}
			if w.lastErr != "" {
				detail += ": " + w.lastErr
			}
			m.cfg.Events.Emit("worker_down", rank, detail)
		}
	}
}

// StateOf reports a worker's current liveness state.
func (m *Monitor) StateOf(rank int) State {
	if m == nil || rank < 0 || rank >= len(m.ws) {
		return StateUnknown
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ws[rank].state
}

// Snapshot returns one row per worker, indexed by rank. Nil-safe.
func (m *Monitor) Snapshot() []WorkerHealth {
	if m == nil {
		return nil
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerHealth, len(m.ws))
	for rank := range m.ws {
		w := &m.ws[rank]
		addr := m.cfg.Addrs[rank]
		if w.beacon.Addr != "" {
			addr = w.beacon.Addr
		}
		out[rank] = WorkerHealth{
			Rank:      rank,
			Addr:      addr,
			State:     w.state,
			Seen:      w.seen,
			BeaconAge: now.Sub(w.last),
			LastErr:   w.lastErr,
			Beacon:    w.beacon,
		}
	}
	return out
}

// AllHealthy reports whether every monitored worker is currently
// healthy. Nil receivers (no cluster) report true.
func (m *Monitor) AllHealthy() bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.ws {
		if m.ws[i].state != StateHealthy {
			return false
		}
	}
	return true
}

// collect is the registry collector: the liveness state machine as
// scrapeable series.
func (m *Monitor) collect(emit obs.Emit) {
	for _, w := range m.Snapshot() {
		up := 0.0
		if w.State == StateHealthy {
			up = 1
		}
		emit(fmt.Sprintf(`cluster_worker_up{rank="%d"}`, w.Rank), up)
		emit(fmt.Sprintf(`cluster_worker_state{rank="%d"}`, w.Rank), float64(w.State))
		emit(fmt.Sprintf(`cluster_beacon_age_seconds{rank="%d"}`, w.Rank), w.BeaconAge.Seconds())
	}
}

// Close stops the aging ticker. Nil-safe and idempotent; the registry
// collector (if any) keeps serving the final states.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.once.Do(func() {
		close(m.stop)
		<-m.done
	})
}
