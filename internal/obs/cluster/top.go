package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// FetchTop pulls one TopSnap from a coordinator's aggregator API. base
// is the coordinator debug address, with or without the http:// scheme —
// rangetop works against a remote coordinator because this is its only
// data path.
func FetchTop(base string) (*TopSnap, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/cluster/top")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: /cluster/top: %s", resp.Status)
	}
	var snap TopSnap
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// ANSI fragments for the state column; plain codes only, per the
// "plain ANSI" contract, so any terminal renders them.
const (
	ansiGreen  = "\x1b[32m"
	ansiYellow = "\x1b[33m"
	ansiRed    = "\x1b[31m"
	ansiBold   = "\x1b[1m"
	ansiReset  = "\x1b[0m"
)

func stateCell(state string, color bool) string {
	label, code := "UNKNOWN", ansiYellow
	switch state {
	case StateHealthy.String():
		label, code = "UP", ansiGreen
	case StateSuspect.String():
		label, code = "SUSPECT", ansiYellow
	case StateDown.String():
		label, code = "DOWN", ansiRed
	}
	if !color {
		return fmt.Sprintf("%-7s", label)
	}
	return code + fmt.Sprintf("%-7s", label) + ansiReset
}

// rate derives a per-second rate from two cumulative samples.
func rate(cur, prev int64, dt time.Duration) float64 {
	if dt <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / dt.Seconds()
}

func fmtNs(ns float64) string {
	return time.Duration(int64(ns)).Round(10 * time.Microsecond).String()
}

// RenderTop renders one rangetop frame: a cluster summary line, one row
// per worker ordered by rank, and the recent-event footer. prev may be
// nil (first frame: rates render as "-"); color strips the ANSI state
// coloring for logs and tests.
func RenderTop(prev, cur *TopSnap, color bool) string {
	var b strings.Builder
	dt := time.Duration(0)
	if prev != nil {
		dt = time.Duration(cur.UnixNs - prev.UnixNs)
	}

	healthy := 0
	for _, w := range cur.Workers {
		if w.State == StateHealthy.String() {
			healthy++
		}
	}
	head := fmt.Sprintf("rangetop · p=%d · workers %d/%d up", cur.P, healthy, cur.P)
	if !cur.Coord.Healthy {
		head += " · DEGRADED"
	}
	if color {
		head = ansiBold + head + ansiReset
	}
	b.WriteString(head + "\n")

	qps := "-"
	if prev != nil {
		qps = fmt.Sprintf("%.1f", rate(cur.Coord.Submitted, prev.Coord.Submitted, dt))
	}
	fmt.Fprintf(&b, "cluster  %s q/s · lat p50 %s p99 %s · cache hits %d · cgm runs %d (%d rounds)\n",
		qps, fmtNs(cur.Coord.LatP50Ns), fmtNs(cur.Coord.LatP99Ns),
		cur.Coord.CacheHits, cur.Coord.Runs, cur.Coord.Rounds)
	fmt.Fprintf(&b, "store    %d live pts · %d levels · backlog %d\n\n",
		cur.Coord.StoreLive, cur.Coord.StoreLevels, cur.Coord.StoreBacklog)

	fmt.Fprintf(&b, "%-4s %-7s %-21s %9s %10s %10s %11s %8s %7s %s\n",
		"rank", "state", "addr", "steps/s", "p50", "p99", "feed B/s", "sess", "heap", "beacon")
	prevW := map[int]TopWorker{}
	if prev != nil {
		for _, w := range prev.Workers {
			prevW[w.Rank] = w
		}
	}
	workers := append([]TopWorker(nil), cur.Workers...)
	sort.Slice(workers, func(i, j int) bool { return workers[i].Rank < workers[j].Rank })
	for _, w := range workers {
		steps, feed := "-", "-"
		if pw, ok := prevW[w.Rank]; ok && prev != nil {
			steps = fmt.Sprintf("%.1f", rate(w.Supersteps, pw.Supersteps, dt))
			feed = fmt.Sprintf("%.0f", rate(w.FeedBytes, pw.FeedBytes, dt))
		}
		beacon := fmt.Sprintf("%dms", w.BeaconAgeMs)
		if w.State == StateDown.String() {
			beacon = "lost " + beacon
		}
		fmt.Fprintf(&b, "r%-3d %s %-21s %9s %10s %10s %11s %8d %7s %s\n",
			w.Rank, stateCell(w.State, color), w.Addr, steps,
			fmtNs(w.StepP50Ns), fmtNs(w.StepP99Ns), feed, w.Sessions,
			fmtHeap(w.HeapBytes), beacon)
	}

	if len(cur.Events) > 0 {
		b.WriteString("\nrecent events\n")
		for _, ev := range cur.Events {
			rank := "cluster"
			if ev.Rank >= 0 {
				rank = fmt.Sprintf("r%d", ev.Rank)
			}
			fmt.Fprintf(&b, "  %s %-16s %-8s %s\n", ev.T.Format("15:04:05.000"), ev.Kind, rank, ev.Detail)
		}
	}
	return b.String()
}

func fmtHeap(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	}
}
