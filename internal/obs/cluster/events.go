package cluster

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
	"time"
)

// Event is one structured cluster event: a worker lifecycle transition
// (worker_suspect / worker_down / worker_recovered), a session abort, a
// store compaction or checkpoint, an ingest begin/end. Rank is the
// worker rank the event concerns, or -1 (obs.CoordRank) for
// coordinator/cluster scope.
type Event struct {
	T      time.Time `json:"t"`
	Kind   string    `json:"kind"`
	Rank   int       `json:"rank"`
	Detail string    `json:"detail,omitempty"`
}

// eventRingCap bounds the in-memory tail served by /cluster/events and
// the serve-loop `events` command; the JSONL file keeps more.
const eventRingCap = 512

// EventLog is the persistent trace/event archive: every event is
// appended as one JSON line to a size-capped file under the store
// directory (so post-mortems survive the process), and a bounded
// in-memory ring serves recent-event queries without touching disk.
// When the cap is hit the file rotates once to <path>.1 — a two-segment
// ring, not unbounded growth. A nil *EventLog is a valid no-op sink, and
// an EventLog opened with an empty path archives in memory only.
type EventLog struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	size     int64
	maxBytes int64
	ring     []Event
	start    int // ring read position
	n        int // ring occupancy
	writeErr string
}

// OpenEventLog opens (appending) or creates the archive file. path == ""
// means memory-only; maxBytes <= 0 defaults to 1 MiB per segment.
func OpenEventLog(path string, maxBytes int64) (*EventLog, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	e := &EventLog{path: path, maxBytes: maxBytes, ring: make([]Event, eventRingCap)}
	if path == "" {
		return e, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if st, err := f.Stat(); err == nil {
		e.size = st.Size()
	}
	e.f = f
	return e, nil
}

// Path reports the archive file path ("" when memory-only). Nil-safe.
func (e *EventLog) Path() string {
	if e == nil {
		return ""
	}
	return e.path
}

// Emit records an event stamped now. Its signature matches obs.EventSink
// so producers take `log.Emit` directly. Nil-safe.
func (e *EventLog) Emit(kind string, rank int, detail string) {
	if e == nil {
		return
	}
	e.Append(Event{T: time.Now(), Kind: kind, Rank: rank, Detail: detail})
}

// Append records one fully formed event.
func (e *EventLog) Append(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Ring first: the in-memory tail must reflect the event even if the
	// disk write fails.
	i := (e.start + e.n) % len(e.ring)
	e.ring[i] = ev
	if e.n < len(e.ring) {
		e.n++
	} else {
		e.start = (e.start + 1) % len(e.ring)
	}
	if e.f == nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		e.writeErr = err.Error()
		return
	}
	line = append(line, '\n')
	if e.size+int64(len(line)) > e.maxBytes {
		e.rotateLocked()
	}
	n, err := e.f.Write(line)
	e.size += int64(n)
	if err != nil {
		e.writeErr = err.Error()
	}
}

// rotateLocked moves the full segment to <path>.1 (replacing any prior
// rotation) and starts a fresh one.
func (e *EventLog) rotateLocked() {
	e.f.Close()
	_ = os.Rename(e.path, e.path+".1")
	f, err := os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		e.writeErr = err.Error()
		e.f = nil
		return
	}
	e.f = f
	e.size = 0
}

// Recent returns up to n most recent events, oldest first. Nil-safe.
func (e *EventLog) Recent(n int) []Event {
	if e == nil || n <= 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n > e.n {
		n = e.n
	}
	out := make([]Event, 0, n)
	for i := e.n - n; i < e.n; i++ {
		out = append(out, e.ring[(e.start+i)%len(e.ring)])
	}
	return out
}

// Err reports the most recent archive write error ("" when healthy).
func (e *EventLog) Err() string {
	if e == nil {
		return ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeErr
}

// Close flushes and closes the archive file. Nil-safe and idempotent.
func (e *EventLog) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	err := e.f.Close()
	e.f = nil
	return err
}

// ReadEvents loads every event from a JSONL archive segment —
// the test- and post-mortem-side reader matching EventLog's writer.
func ReadEvents(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
