package obs

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("same name must return the same counter handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 1000 and 1 of 1<<20: p50 must sit in 1000's
	// bucket (512,1024] and p99.9-ish tail near the outlier.
	for range 100 {
		h.Observe(1000)
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if s.Sum != 100*1000+1<<20 {
		t.Fatalf("sum = %d", s.Sum)
	}
	p50 := s.Quantile(0.50)
	if p50 < 512 || p50 > 1024 {
		t.Fatalf("p50 = %g, want within (512,1024]", p50)
	}
	hi := s.Quantile(1.0)
	if hi < 1<<19 || hi > 1<<21 {
		t.Fatalf("max quantile = %g, want around 2^20", hi)
	}
	h.Observe(-5) // clamps to zero, lands in bucket 0
	if got := h.Snapshot().Buckets[0]; got != 1 {
		t.Fatalf("bucket0 = %d, want 1", got)
	}
}

// TestHistogramSnapshotConsistent hammers Observe from many goroutines
// while snapshotting: every snapshot must satisfy Count == Σ buckets and
// Count must be monotone across successive snapshots.
func TestHistogramSnapshotConsistent(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 50_000 {
				h.Observe(int64(i%1000) * int64(w+1))
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	var last int64
	check := func() {
		s := h.Snapshot()
		var sum int64
		for _, b := range s.Buckets {
			sum += b
		}
		if sum != s.Count {
			t.Errorf("torn snapshot: Count %d != Σbuckets %d", s.Count, sum)
		}
		if s.Count < last {
			t.Errorf("count went backwards: %d -> %d", last, s.Count)
		}
		last = s.Count
	}
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			check()
			runtime.Gosched()
		}
	}
	check()
	if last != 4*50_000 {
		t.Fatalf("final count = %d, want %d", last, 4*50_000)
	}
}

func TestWritePromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`wire_frames_total{kind="block"}`).Add(3)
	r.Counter(`wire_frames_total{kind="open"}`).Add(1)
	r.Gauge("store_levels").Set(2)
	r.Histogram(`lat_ns{mode="count"}`).Observe(900)
	r.Func("live_ranks", func() float64 { return 4 })
	r.Collect(func(emit Emit) {
		emit(`dyn_bytes{kind="column"}`, 17)
	})
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE wire_frames_total counter",
		`wire_frames_total{kind="block"} 3`,
		`wire_frames_total{kind="open"} 1`,
		"# TYPE store_levels gauge",
		"store_levels 2",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{mode="count",le="1024"} 1`,
		`lat_ns_bucket{mode="count",le="+Inf"} 1`,
		`lat_ns_sum{mode="count"} 900`,
		`lat_ns_count{mode="count"} 1`,
		"live_ranks 4",
		`dyn_bytes{kind="column"} 17`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// One TYPE line per base name even with two labeled children.
	if n := strings.Count(out, "# TYPE wire_frames_total"); n != 1 {
		t.Errorf("want 1 TYPE line for wire_frames_total, got %d", n)
	}
}

func TestTracerSpansAndTree(t *testing.T) {
	tr := NewTracer()
	id := tr.NewID()
	if id == 0 {
		t.Fatal("trace IDs must be non-zero")
	}
	tr.Add(Span{Trace: id, Stamp: 1, Name: "dispatch", Rank: CoordRank, Dur: 1500})
	tr.Add(Span{Trace: id, Stamp: 1, Name: "step", Rank: 1, Dur: 700})
	tr.Add(Span{Trace: id, Stamp: 1, Name: "step", Rank: 0, Dur: 800})
	tr.Add(Span{Trace: id, Stamp: 2, Name: "gather", Rank: 0, Dur: 300})
	tr.Add(Span{Trace: 0, Stamp: 9, Name: "dropped", Rank: 0}) // untraced: ignored
	if got := len(tr.Spans(id)); got != 4 {
		t.Fatalf("spans = %d, want 4", got)
	}
	tree := tr.Tree(id)
	// Coordinator heads the stamp group; ranks ordered beneath it.
	iCoord := strings.Index(tree, "coord dispatch")
	iR0 := strings.Index(tree, "r0  step")
	iR1 := strings.Index(tree, "r1  step")
	iS2 := strings.Index(tree, "stamp 2")
	if iCoord < 0 || iR0 < 0 || iR1 < 0 || iS2 < 0 {
		t.Fatalf("tree missing expected lines:\n%s", tree)
	}
	if !(iCoord < iR0 && iR0 < iR1 && iR1 < iS2) {
		t.Fatalf("tree ordering wrong:\n%s", tree)
	}
	if tr.Latest() != id {
		t.Fatalf("Latest = %d, want %d", tr.Latest(), id)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.NewID() != 0 {
		t.Fatal("nil tracer must mint 0")
	}
	tr.Add(Span{Trace: 5})
	tr.AddAll([]Span{{Trace: 5}})
	ran := false
	tr.Record(7, 0, 0, "x", func() { ran = true })
	if !ran {
		t.Fatal("Record must run fn on nil tracer")
	}
	if tr.Spans(5) != nil || tr.Latest() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer()
	first := tr.NewID()
	tr.Add(Span{Trace: first, Name: "old"})
	for range maxTraces {
		tr.Add(Span{Trace: tr.NewID(), Name: "new"})
	}
	if tr.Spans(first) != nil {
		t.Fatal("oldest trace must be evicted past the ring cap")
	}
}

func TestAdminEndpointsAndClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adm_hits_total").Add(9)
	health := func() any {
		return map[string]any{"sessions": 3, "ok": true}
	}
	before := runtime.NumGoroutine()
	a, err := ServeAdmin("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + a.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "adm_hits_total 9") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"sessions": 3`) {
		t.Fatalf("/healthz: code %d body %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code %d body ...%q", code, body[:min(80, len(body))])
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}

	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Goroutine hygiene: the serve goroutine must be gone. Allow the
	// runtime a moment to retire finished goroutines and idle conns.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}

func TestAdminNilHealth(t *testing.T) {
	a, err := ServeAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil health: code %d, want 503", resp.StatusCode)
	}
}
