package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Admin is a live debug HTTP server exposing a registry and a health
// snapshot. It owns its listener and serve goroutine; Close is
// synchronous — when it returns, the listener is closed and the serve
// goroutine has exited, so worker lifecycle tests can assert no leaked
// goroutines.
type Admin struct {
	reg    *Registry
	health func() any
	ln     net.Listener
	mux    *http.ServeMux
	srv    *http.Server
	done   chan struct{}
	once   sync.Once
}

// ServeAdmin starts an admin server on addr (e.g. "127.0.0.1:0"). The
// mux serves:
//
//	/metrics      registry in Prometheus text exposition
//	/healthz      health() marshalled as JSON (200 if it returns, 503 on nil health)
//	/debug/vars   the process expvar map
//	/debug/pprof  the standard pprof index, profile, symbol, trace
//
// health may be nil; the registry must not be.
func ServeAdmin(addr string, reg *Registry, health func() any) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Admin{reg: reg, health: health, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metricsHandler)
	mux.HandleFunc("/healthz", a.healthHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a.mux = mux
	a.srv = &http.Server{Handler: mux}
	go func() {
		defer close(a.done)
		_ = a.srv.Serve(ln) // returns on Close with ErrServerClosed
	}()
	return a, nil
}

// Handle mounts an extra handler on the admin mux (the coordinator's
// /cluster/* endpoints). ServeMux registration is concurrency-safe, so
// owners may mount after the server is already serving.
func (a *Admin) Handle(pattern string, h http.HandlerFunc) {
	if a == nil {
		return
	}
	a.mux.HandleFunc(pattern, h)
}

// Addr reports the bound listen address (useful with ":0").
func (a *Admin) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener and waits for the serve goroutine to exit.
// Nil-safe and idempotent so owners can close unconditionally.
func (a *Admin) Close() error {
	if a == nil {
		return nil
	}
	var err error
	a.once.Do(func() {
		err = a.srv.Close()
		<-a.done
	})
	return err
}

func (a *Admin) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.reg.WriteProm(w)
}

func (a *Admin) healthHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if a.health == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"no health source"}` + "\n"))
		return
	}
	v := a.health()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	// A degraded Health snapshot (failed compaction, poisoned machine,
	// down worker) is a 503, not an always-200-while-alive.
	if h, ok := v.(Health); ok && !h.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write(append(b, '\n'))
}
