package obs

import (
	"strings"
	"testing"
)

// TestHistSnapshotMergeEmpty checks the merge identities the cluster
// aggregator leans on: an empty snapshot is a two-sided identity, and
// merging never perturbs the receiver's inputs (Merge is by value).
func TestHistSnapshotMergeEmpty(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Merge(empty); got.Count != 0 || got.Sum != 0 {
		t.Fatalf("empty.Merge(empty) = count %d sum %d, want zeros", got.Count, got.Sum)
	}
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}

	var h Histogram
	for _, v := range []int64{10, 100, 1000, 10000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	left, right := s.Merge(empty), empty.Merge(s)
	if left != s || right != s {
		t.Fatalf("merging with empty changed the snapshot")
	}
	if s.Merge(s).Count != 2*s.Count {
		t.Fatalf("self-merge count = %d, want %d", s.Merge(s).Count, 2*s.Count)
	}
}

// TestHistSnapshotMergeDisjoint merges snapshots whose observations land
// in disjoint buckets — the shape of per-rank worker histograms with
// non-overlapping latency regimes — and checks counts, sums and the
// quantiles straddling the two populations.
func TestHistSnapshotMergeDisjoint(t *testing.T) {
	var fast, slow Histogram
	for i := 0; i < 90; i++ {
		fast.Observe(8) // bucket of small values
	}
	for i := 0; i < 10; i++ {
		slow.Observe(1 << 20) // far-away bucket
	}
	m := fast.Snapshot().Merge(slow.Snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	if want := int64(90*8 + 10*(1<<20)); m.Sum != want {
		t.Fatalf("merged sum = %d, want %d", m.Sum, want)
	}
	for i, b := range m.Buckets {
		if f, s := fast.Snapshot().Buckets[i], slow.Snapshot().Buckets[i]; b != f+s {
			t.Fatalf("bucket %d: merged %d, parts %d+%d", i, b, f, s)
		}
	}
	// p50 sits in the fast population, p99 in the slow one.
	if p50 := m.Quantile(0.50); p50 > 1<<10 {
		t.Errorf("merged p50 = %v, want within the fast population", p50)
	}
	if p99 := m.Quantile(0.99); p99 < 1<<19 {
		t.Errorf("merged p99 = %v, want within the slow population", p99)
	}
}

// TestHistSnapshotWriteProm checks the standalone exposition used for
// cluster-merged families: TYPE line, cumulative buckets, +Inf, sum and
// count.
func TestHistSnapshotWriteProm(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(300)
	var b strings.Builder
	if err := h.Snapshot().WriteProm(&b, "cluster_test_ns"); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cluster_test_ns histogram",
		`cluster_test_ns_bucket{le="+Inf"} 2`,
		"cluster_test_ns_sum 303",
		"cluster_test_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestFmtBytes pins the span cost column's units.
func TestFmtBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{{512, "512B"}, {2048, "2.0KB"}, {64 << 10, "64KB"}, {20 << 20, "20MB"}} {
		if got := FmtBytes(tc.n); got != tc.want {
			t.Errorf("FmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
