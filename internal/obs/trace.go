package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a traced query's execution. Trace groups
// spans into a query; Stamp orders them along the machine's superstep
// sequence (coordinator and workers share stamp numbering because both
// sides derive it from the exchange protocol); Rank is the worker rank
// the span ran on, or CoordRank for coordinator-side spans.
type Span struct {
	Trace uint64
	Stamp int64
	Name  string
	Rank  int
	// Start is nanoseconds since the process's tracer epoch — only span
	// durations and intra-process ordering are meaningful across
	// processes, not absolute offsets.
	Start int64
	Dur   int64
	// Bytes attributes wire traffic to the span (coordinator↔worker frame
	// bytes for an exchange, both directions). Zero means "no traffic" —
	// pure-compute spans leave it unset and the tree omits the column.
	Bytes int64
}

// CoordRank marks a span recorded on the coordinator rather than a
// worker rank.
const CoordRank = -1

// maxTraces bounds the tracer's memory: completed traces are kept in a
// ring and the oldest is dropped when a new trace ID arrives past the
// cap. A trace that slow-query logging or Engine.Trace wants must be
// read promptly — the tracer is a flight recorder, not a database.
const maxTraces = 256

// Tracer collects spans by trace ID. It is safe for concurrent use:
// worker goroutines add spans while the coordinator reads trees. All
// methods tolerate a nil receiver (recording becomes a no-op and fn in
// Record still runs), so instrumentation sites never branch on whether
// tracing is configured.
type Tracer struct {
	mu     sync.Mutex
	spans  map[uint64][]Span
	ring   []uint64 // insertion order of live trace IDs
	nextID atomic.Uint64
	epoch  time.Time
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	t := &Tracer{spans: make(map[uint64][]Span), epoch: time.Now()}
	t.nextID.Store(1)
	return t
}

// NewID mints a fresh non-zero trace ID. Zero means "untraced"
// everywhere a trace ID travels (frames, deposits), so IDs start at 1;
// a nil tracer mints 0.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Now reports nanoseconds since the tracer epoch, the Start clock for
// spans recorded through this tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Add records one span; spans with Trace == 0 are dropped.
func (t *Tracer) Add(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.spans[s.Trace]; !live {
		if len(t.ring) >= maxTraces {
			delete(t.spans, t.ring[0])
			t.ring = t.ring[1:]
		}
		t.ring = append(t.ring, s.Trace)
	}
	t.spans[s.Trace] = append(t.spans[s.Trace], s)
}

// AddAll records a batch of spans (a worker reply's span list).
func (t *Tracer) AddAll(spans []Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		t.Add(s)
	}
}

// Record times fn as one span under the given identity; with a nil
// tracer or zero trace ID fn runs untimed.
func (t *Tracer) Record(trace uint64, stamp int64, rank int, name string, fn func()) {
	if t == nil || trace == 0 {
		fn()
		return
	}
	start := t.Now()
	fn()
	t.Add(Span{Trace: trace, Stamp: stamp, Name: name, Rank: rank, Start: start, Dur: t.Now() - start})
}

// Spans returns a copy of the spans recorded under id, or nil if the
// trace is unknown (never started, or already evicted from the ring).
func (t *Tracer) Spans(id uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.spans[id]
	if s == nil {
		return nil
	}
	return append([]Span(nil), s...)
}

// Latest returns the most recently started trace ID, or 0 if none.
func (t *Tracer) Latest() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return 0
	}
	return t.ring[len(t.ring)-1]
}

// Tree renders the trace as an indented span tree grouped by stamp:
// coordinator spans lead each stamp group, worker spans nest under it
// ordered by rank. The rendering is the `trace` command's and the
// slow-query log's shared output format.
func (t *Tracer) Tree(id uint64) string {
	spans := t.Spans(id)
	if len(spans) == 0 {
		return fmt.Sprintf("trace %d: no spans recorded", id)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Stamp != spans[j].Stamp {
			return spans[i].Stamp < spans[j].Stamp
		}
		// Coordinator span heads its stamp group.
		ci, cj := spans[i].Rank == CoordRank, spans[j].Rank == CoordRank
		if ci != cj {
			return ci
		}
		if spans[i].Rank != spans[j].Rank {
			return spans[i].Rank < spans[j].Rank
		}
		return spans[i].Start < spans[j].Start
	})
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d (%d spans)\n", id, len(spans))
	const noStamp = int64(-1) << 62
	lastStamp := noStamp
	for _, s := range spans {
		if s.Stamp != lastStamp {
			if s.Stamp < 0 {
				// Stamp -1 marks spans outside the superstep sequence (the
				// engine's whole-batch dispatch span).
				b.WriteString("  batch\n")
			} else {
				fmt.Fprintf(&b, "  stamp %d\n", s.Stamp)
			}
			lastStamp = s.Stamp
		}
		cost := ""
		if s.Bytes > 0 {
			cost = "  " + FmtBytes(s.Bytes)
		}
		if s.Rank == CoordRank {
			fmt.Fprintf(&b, "    coord %-24s %s%s\n", s.Name, fmtDur(s.Dur), cost)
		} else {
			fmt.Fprintf(&b, "      r%-2d %-22s %s%s\n", s.Rank, s.Name, fmtDur(s.Dur), cost)
		}
	}
	return b.String()
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// FmtBytes renders a byte count for humans (the trace tree's cost column
// and rangetop's heap column).
func FmtBytes(n int64) string {
	switch {
	case n >= 10*1024*1024:
		return fmt.Sprintf("%dMB", n/(1024*1024))
	case n >= 10*1024:
		return fmt.Sprintf("%.0fKB", float64(n)/1024)
	case n >= 1024:
		return fmt.Sprintf("%.1fKB", float64(n)/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
