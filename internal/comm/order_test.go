package comm

import (
	"testing"

	"repro/internal/cgm"
	"repro/internal/semigroup"
)

// TestScanRankOrder verifies the documented fold order with a
// non-commutative operation (string concatenation): Scan must fold values
// in processor-rank order.
func TestScanRankOrder(t *testing.T) {
	concat := semigroup.Monoid[string]{
		Identity: "",
		Combine:  func(a, b string) string { return a + b },
	}
	m := cgm.New(cgm.Config{P: 4})
	var prefixes [4]string
	var totals [4]string
	m.Run(func(pr *cgm.Proc) {
		v := string(rune('a' + pr.Rank()))
		pre, tot := Scan(pr, "order", concat, v)
		prefixes[pr.Rank()] = pre
		totals[pr.Rank()] = tot
	})
	want := [4]string{"", "a", "ab", "abc"}
	for i := range prefixes {
		if prefixes[i] != want[i] {
			t.Errorf("prefix at %d = %q, want %q", i, prefixes[i], want[i])
		}
		if totals[i] != "abcd" {
			t.Errorf("total at %d = %q", i, totals[i])
		}
	}
}

// TestAllGatherSliceAliasing: received slices alias the sender's memory in
// the shared-address-space simulator; receivers must treat them as
// read-only. This test documents (and pins) that sharing contract.
func TestAllGatherSliceAliasing(t *testing.T) {
	m := cgm.New(cgm.Config{P: 2})
	src := []int{42}
	m.Run(func(pr *cgm.Proc) {
		var local []int
		if pr.Rank() == 0 {
			local = src
		}
		got := AllGather(pr, "alias", local)
		if len(got[0]) != 1 || got[0][0] != 42 {
			t.Error("gather content wrong")
		}
	})
	if src[0] != 42 {
		t.Error("source mutated")
	}
}

func TestBroadcastEmptyPayload(t *testing.T) {
	m := cgm.New(cgm.Config{P: 3})
	m.Run(func(pr *cgm.Proc) {
		got := Broadcast(pr, "empty", 1, []string(nil))
		if len(got) != 0 {
			t.Errorf("empty broadcast delivered %v", got)
		}
	})
}

func TestSegmentedBroadcastSingleProcSegment(t *testing.T) {
	m := cgm.New(cgm.Config{P: 3})
	var got [3][]int
	m.Run(func(pr *cgm.Proc) {
		var items []SegItem[int]
		if pr.Rank() == 1 {
			items = []SegItem[int]{{Val: 5, DstLo: 1, DstHi: 1}}
		}
		got[pr.Rank()] = SegmentedBroadcast(pr, "one", items)
	})
	if len(got[0]) != 0 || len(got[2]) != 0 || len(got[1]) != 1 || got[1][0] != 5 {
		t.Errorf("single-proc segment wrong: %v", got)
	}
}
