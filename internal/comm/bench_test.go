package comm

import (
	"testing"

	"repro/internal/cgm"
)

func BenchmarkAllGather(b *testing.B) {
	m := cgm.New(cgm.Config{P: 8})
	payload := make([]int, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(func(pr *cgm.Proc) {
			AllGatherFlat(pr, "bench", payload)
		})
	}
}

func BenchmarkRebalance(b *testing.B) {
	m := cgm.New(cgm.Config{P: 8})
	skewed := make([]int, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(func(pr *cgm.Proc) {
			var local []int
			if pr.Rank() == 0 {
				local = skewed
			}
			Rebalance(pr, "bench", local)
		})
	}
}

func BenchmarkExchangeRoundTrip(b *testing.B) {
	m := cgm.New(cgm.Config{P: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(func(pr *cgm.Proc) {
			out := make([][]byte, 4)
			for j := range out {
				out[j] = []byte{byte(pr.Rank())}
			}
			cgm.Exchange(pr, "bench", out)
		})
	}
}
