// Package comm implements the paper's "small set of standard
// communications operations" (§1): segmented broadcast, segmented gather,
// all-to-all broadcast, personalized all-to-all broadcast, partial sum —
// and supporting collectives — each realized as a constant number of
// cgm.Exchange h-relations (usually one). Sort, the sixth operation, lives
// in package psort.
package comm

import (
	"fmt"

	"repro/internal/cgm"
	"repro/internal/semigroup"
)

// AllGather is the paper's all-to-all broadcast: every processor
// contributes local and receives every processor's contribution, indexed
// by source rank. One h-relation with h = (p-1)·max|local|.
func AllGather[T any](pr *cgm.Proc, label string, local []T) [][]T {
	p := pr.P()
	out := make([][]T, p)
	for j := 0; j < p; j++ {
		out[j] = local
	}
	return cgm.Exchange(pr, label, out)
}

// AllGatherFlat gathers and concatenates in rank order.
func AllGatherFlat[T any](pr *cgm.Proc, label string, local []T) []T {
	parts := AllGather(pr, label, local)
	total := 0
	for _, s := range parts {
		total += len(s)
	}
	flat := make([]T, 0, total)
	for _, s := range parts {
		flat = append(flat, s...)
	}
	return flat
}

// Broadcast distributes root's data to every processor.
func Broadcast[T any](pr *cgm.Proc, label string, root int, data []T) []T {
	p := pr.P()
	out := make([][]T, p)
	if pr.Rank() == root {
		for j := 0; j < p; j++ {
			out[j] = data
		}
	}
	in := cgm.Exchange(pr, label, out)
	return in[root]
}

// Gather collects every processor's local data at root (indexed by source
// rank); other processors receive nil.
func Gather[T any](pr *cgm.Proc, label string, root int, local []T) [][]T {
	p := pr.P()
	out := make([][]T, p)
	out[root] = local
	in := cgm.Exchange(pr, label, out)
	if pr.Rank() != root {
		return nil
	}
	return in
}

// Scatter delivers blocks[j] from root to processor j.
func Scatter[T any](pr *cgm.Proc, label string, root int, blocks [][]T) []T {
	p := pr.P()
	out := make([][]T, p)
	if pr.Rank() == root {
		if len(blocks) != p {
			panic(fmt.Sprintf("comm: %s: scatter needs %d blocks, got %d", label, p, len(blocks)))
		}
		out = blocks
	}
	in := cgm.Exchange(pr, label, out)
	return in[root]
}

// AllReduce folds one value per processor with a commutative monoid and
// returns the total everywhere.
func AllReduce[T any](pr *cgm.Proc, label string, m semigroup.Monoid[T], local T) T {
	vals := AllGatherFlat(pr, label, []T{local})
	return m.Fold(vals...)
}

// Scan is the paper's partial-sum operation over processor ranks: it
// returns the exclusive prefix (fold of the values of ranks < mine) and
// the grand total. Monoid commutativity is not required here; values are
// folded in rank order.
func Scan[T any](pr *cgm.Proc, label string, m semigroup.Monoid[T], local T) (prefix, total T) {
	vals := AllGatherFlat(pr, label, []T{local})
	prefix = m.Identity
	total = m.Identity
	for i, v := range vals {
		if i < pr.Rank() {
			prefix = m.Combine(prefix, v)
		}
		total = m.Combine(total, v)
	}
	return prefix, total
}

// CountScan is the common integer special case of Scan for slice lengths:
// it returns this processor's exclusive global offset and the global total.
func CountScan(pr *cgm.Proc, label string, localLen int) (offset, total int) {
	lens := AllGatherFlat(pr, label, []int{localLen})
	for i, l := range lens {
		if i < pr.Rank() {
			offset += l
		}
		total += l
	}
	return offset, total
}

// SegItem is one item of a segmented broadcast: Val must reach every
// processor in [DstLo, DstHi].
type SegItem[T any] struct {
	Val          T
	DstLo, DstHi int
}

// SegmentedBroadcast is the paper's segmented broadcast: every processor
// contributes items addressed to processor intervals; each processor
// receives (in deterministic source-rank order) every item whose interval
// covers it. Algorithm Report uses it to spread query copies across the
// processors responsible for slices of a selected segment tree.
func SegmentedBroadcast[T any](pr *cgm.Proc, label string, items []SegItem[T]) []T {
	p := pr.P()
	out := make([][]T, p)
	for _, it := range items {
		lo, hi := it.DstLo, it.DstHi
		if lo < 0 {
			lo = 0
		}
		if hi > p-1 {
			hi = p - 1
		}
		for j := lo; j <= hi; j++ {
			out[j] = append(out[j], it.Val)
		}
	}
	in := cgm.Exchange(pr, label, out)
	var flat []T
	for _, s := range in {
		flat = append(flat, s...)
	}
	return flat
}

// SegmentedGather is the inverse operation: every processor contributes
// items tagged with a destination processor; each destination receives its
// items in source-rank order. (A restricted personalized all-to-all, kept
// for completeness with the paper's operation list.)
func SegmentedGather[T any](pr *cgm.Proc, label string, items []T, dest func(T) int) []T {
	p := pr.P()
	out := make([][]T, p)
	for _, it := range items {
		d := dest(it)
		if d < 0 || d >= p {
			panic(fmt.Sprintf("comm: %s: destination %d out of range", label, d))
		}
		out[d] = append(out[d], it)
	}
	in := cgm.Exchange(pr, label, out)
	var flat []T
	for _, s := range in {
		flat = append(flat, s...)
	}
	return flat
}

// Rebalance redistributes the globally ordered data (processor rank major,
// local order minor) so every processor ends with a contiguous block of
// ⌈N/p⌉ or ⌊N/p⌋ elements, preserving global order. One h-relation with
// h ≤ ⌈N/p⌉ plus the counting round.
func Rebalance[T any](pr *cgm.Proc, label string, local []T) []T {
	p := pr.P()
	offset, total := CountScan(pr, label+"/count", len(local))
	in := cgm.Exchange(pr, label, BlockPartition(local, offset, total, p))
	var flat []T
	for _, s := range in {
		flat = append(flat, s...)
	}
	return flat
}

// BlockPartition buckets a run of globally ordered items (this
// processor's run starts at global position offset of total items) by
// block owner — the emit half of Rebalance, exported so the
// worker-resident construct can run it worker-side.
func BlockPartition[T any](local []T, offset, total, p int) [][]T {
	out := make([][]T, p)
	for i, v := range local {
		// Block boundaries: processor j owns [j*total/p, (j+1)*total/p).
		j := BlockOwner(offset+i, total, p)
		out[j] = append(out[j], v)
	}
	return out
}

// BlockOwner maps global position g of N items onto one of p contiguous
// blocks (sizes differing by at most one).
func BlockOwner(g, n, p int) int {
	if n == 0 {
		return 0
	}
	j := g * p / n // within one block of the answer; adjust exactly
	if j > p-1 {
		j = p - 1
	}
	for j > 0 && g < blockStart(j, n, p) {
		j--
	}
	for j < p-1 && g >= blockStart(j+1, n, p) {
		j++
	}
	return j
}

// blockStart is the first global position of processor j's block.
func blockStart(j, n, p int) int { return j * n / p }
