package comm

import (
	"reflect"
	"testing"

	"repro/internal/cgm"
	"repro/internal/semigroup"
)

func TestAllGather(t *testing.T) {
	m := cgm.New(cgm.Config{P: 4})
	var got [4][][]int
	m.Run(func(pr *cgm.Proc) {
		got[pr.Rank()] = AllGather(pr, "ag", []int{pr.Rank(), pr.Rank() * 2})
	})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := []int{j, j * 2}
			if !reflect.DeepEqual(got[i][j], want) {
				t.Fatalf("proc %d src %d: %v want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestAllGatherFlatOrder(t *testing.T) {
	m := cgm.New(cgm.Config{P: 3})
	var got [3][]int
	m.Run(func(pr *cgm.Proc) {
		got[pr.Rank()] = AllGatherFlat(pr, "agf", []int{pr.Rank()})
	})
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(got[i], []int{0, 1, 2}) {
			t.Fatalf("proc %d: %v", i, got[i])
		}
	}
}

func TestBroadcast(t *testing.T) {
	m := cgm.New(cgm.Config{P: 5})
	var got [5][]string
	m.Run(func(pr *cgm.Proc) {
		var data []string
		if pr.Rank() == 2 {
			data = []string{"hello", "world"}
		}
		got[pr.Rank()] = Broadcast(pr, "bc", 2, data)
	})
	for i := 0; i < 5; i++ {
		if !reflect.DeepEqual(got[i], []string{"hello", "world"}) {
			t.Fatalf("proc %d: %v", i, got[i])
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := cgm.New(cgm.Config{P: 4})
	var back [4][]int
	m.Run(func(pr *cgm.Proc) {
		mine := []int{pr.Rank() * 100}
		at0 := Gather(pr, "g", 0, mine)
		if pr.Rank() == 0 {
			if len(at0) != 4 || at0[3][0] != 300 {
				t.Error("gather at root wrong")
			}
		} else if at0 != nil {
			t.Error("non-root must receive nil")
		}
		// Root scatters back doubled values.
		var blocks [][]int
		if pr.Rank() == 0 {
			blocks = make([][]int, 4)
			for j := range blocks {
				blocks[j] = []int{at0[j][0] * 2}
			}
		}
		back[pr.Rank()] = Scatter(pr, "s", 0, blocks)
	})
	for i := 0; i < 4; i++ {
		if back[i][0] != i*200 {
			t.Fatalf("proc %d got %v", i, back[i])
		}
	}
}

func TestScatterWrongBlockCount(t *testing.T) {
	m := cgm.New(cgm.Config{P: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected abort")
		}
	}()
	m.Run(func(pr *cgm.Proc) {
		var blocks [][]int
		if pr.Rank() == 0 {
			blocks = make([][]int, 3)
		}
		Scatter(pr, "bad", 0, blocks)
	})
}

func TestAllReduceAndScan(t *testing.T) {
	m := cgm.New(cgm.Config{P: 6})
	var totals [6]int64
	var prefixes [6]int64
	m.Run(func(pr *cgm.Proc) {
		v := int64(pr.Rank() + 1)
		totals[pr.Rank()] = AllReduce(pr, "ar", semigroup.IntSum(), v)
		pre, tot := Scan(pr, "scan", semigroup.IntSum(), v)
		prefixes[pr.Rank()] = pre
		if tot != 21 {
			t.Errorf("scan total = %d", tot)
		}
	})
	for i := 0; i < 6; i++ {
		if totals[i] != 21 {
			t.Fatalf("allreduce at %d = %d", i, totals[i])
		}
		want := int64(i * (i + 1) / 2)
		if prefixes[i] != want {
			t.Fatalf("prefix at %d = %d, want %d", i, prefixes[i], want)
		}
	}
}

func TestCountScan(t *testing.T) {
	m := cgm.New(cgm.Config{P: 4})
	m.Run(func(pr *cgm.Proc) {
		off, tot := CountScan(pr, "cs", pr.Rank()) // lens 0,1,2,3
		wantOff := pr.Rank() * (pr.Rank() - 1) / 2
		if off != wantOff || tot != 6 {
			t.Errorf("proc %d: off=%d tot=%d", pr.Rank(), off, tot)
		}
	})
}

func TestSegmentedBroadcast(t *testing.T) {
	m := cgm.New(cgm.Config{P: 4})
	var got [4][]string
	m.Run(func(pr *cgm.Proc) {
		var items []SegItem[string]
		if pr.Rank() == 0 {
			items = []SegItem[string]{{Val: "a", DstLo: 0, DstHi: 2}}
		}
		if pr.Rank() == 3 {
			items = []SegItem[string]{{Val: "b", DstLo: 2, DstHi: 9}} // clamped to 3
		}
		got[pr.Rank()] = SegmentedBroadcast(pr, "sb", items)
	})
	want := [4][]string{{"a"}, {"a"}, {"a", "b"}, {"b"}}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("proc %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestSegmentedGather(t *testing.T) {
	m := cgm.New(cgm.Config{P: 3})
	var got [3][]int
	m.Run(func(pr *cgm.Proc) {
		items := []int{pr.Rank()*3 + 0, pr.Rank()*3 + 1, pr.Rank()*3 + 2}
		got[pr.Rank()] = SegmentedGather(pr, "sg", items, func(v int) int { return v % 3 })
	})
	// Destination d receives values ≡ d (mod 3), in source-rank order.
	for d := 0; d < 3; d++ {
		if len(got[d]) != 3 {
			t.Fatalf("dest %d: %v", d, got[d])
		}
		for _, v := range got[d] {
			if v%3 != d {
				t.Fatalf("dest %d received %d", d, v)
			}
		}
	}
}

func TestSegmentedGatherBadDest(t *testing.T) {
	m := cgm.New(cgm.Config{P: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected abort")
		}
	}()
	m.Run(func(pr *cgm.Proc) {
		SegmentedGather(pr, "bad", []int{7}, func(int) int { return 5 })
	})
}

func TestRebalanceEvensOut(t *testing.T) {
	m := cgm.New(cgm.Config{P: 4})
	var got [4][]int
	m.Run(func(pr *cgm.Proc) {
		// Heavily skewed: proc 0 has everything.
		var local []int
		if pr.Rank() == 0 {
			local = make([]int, 13)
			for i := range local {
				local[i] = i
			}
		}
		got[pr.Rank()] = Rebalance(pr, "rb", local)
	})
	var all []int
	for i := 0; i < 4; i++ {
		if len(got[i]) > 4 || len(got[i]) < 3 {
			t.Fatalf("proc %d holds %d of 13, want 3..4", i, len(got[i]))
		}
		all = append(all, got[i]...)
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("global order broken at %d: %v", i, all)
		}
	}
}

func TestRebalanceEmpty(t *testing.T) {
	m := cgm.New(cgm.Config{P: 3})
	m.Run(func(pr *cgm.Proc) {
		if got := Rebalance(pr, "rb0", []int(nil)); len(got) != 0 {
			t.Errorf("empty rebalance returned %v", got)
		}
	})
}

func TestBlockOwnerExhaustive(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for p := 1; p <= 7; p++ {
			for g := 0; g < n; g++ {
				j := BlockOwner(g, n, p)
				if g < blockStart(j, n, p) || (j < p-1 && g >= blockStart(j+1, n, p)) {
					t.Fatalf("BlockOwner(%d,%d,%d) = %d", g, n, p, j)
				}
			}
		}
	}
}
