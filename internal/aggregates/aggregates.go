// Package aggregates registers the standard named aggregates for
// worker-resident execution. An aggregate's monoid and per-point value
// function are Go code and cannot cross a process boundary, so resident
// associative-function queries work by NAME (core.RegisterAggregate +
// core.PrepareAssociativeNamed): every binary of a cluster — the
// coordinator and each rangeworker — must import the package that
// registers the aggregates it serves, so both sides resolve a name to
// identical code. Importing this package (for effect) registers:
//
//	weight-sum   Σ workload.WeightOf(p) — the standard experiment weight
//	count        Σ 1 (an int64 counting monoid; mostly for tests — the
//	             counting MODE needs no handle)
//
// Application binaries register their own with core.RegisterAggregate
// (drtree.RegisterAggregate) from an init function of a package imported
// on both sides.
package aggregates

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/semigroup"
	"repro/internal/workload"
)

// Names of the standard aggregates.
const (
	WeightSum = "weight-sum"
	CountSum  = "count"
)

func init() {
	core.RegisterAggregate(WeightSum, semigroup.FloatSum(), workload.WeightOf)
	core.RegisterAggregate(CountSum, semigroup.IntSum(), func(geom.Point) int64 { return 1 })
}
